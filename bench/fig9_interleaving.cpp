// Reproduces Fig. 9 of the paper: Kernel Interleaving.
//  (a) speedup of interleaving two {H2D copy, kernel, D2H copy} programs as
//      a function of kernel length, with the copy time fixed at 13.44 ms;
//      expected model: T_total = 2 Tm + N * max(Tm, Tk)        (Eq. 7)
//  (b) speedup as a function of the number of interleaved programs with
//      Tk = Tm; expected model: speedup = 3N / (2 + N)          (Eq. 8)

#include <algorithm>
#include <iostream>

#include "ir/builder.hpp"
#include "sched/dispatcher.hpp"
#include "util/table.hpp"

namespace sigvp {
namespace {

KernelIR make_synthetic_kernel() {
  KernelBuilder b("synthetic", 0);
  b.block("entry");
  b.ret();
  return b.build();
}

LaunchDims synth_dims() {
  LaunchDims d;
  d.block_x = 256;
  d.grid_x = 8;
  return d;
}

/// FP32 instruction count that makes the synthetic kernel run ~target_us on
/// the Quadro model (linear fit through two probes).
std::uint64_t sigma_for_duration(const KernelIR& k, double target_us) {
  auto dur = [&](double x) {
    DynamicProfile p;
    p.instr_counts[InstrClass::kFp32] = static_cast<std::uint64_t>(x);
    return evaluate_analytic(make_quadro4000(), k, synth_dims(), p,
                             MemoryBehavior{1024, 64, 0.9, 0.97})
        .duration_us;
  };
  const double x1 = 1e6, x2 = 2e6;
  const double d1 = dur(x1), d2 = dur(x2);
  const double slope = (d2 - d1) / (x2 - x1);
  const double x = x1 + (target_us - d1) / slope;
  return static_cast<std::uint64_t>(std::max(1e4, x));
}

struct Measurement {
  SimTime makespan_us = 0.0;
};

/// N programs, each {H2D, kernel, D2H}, pushed through the Re-scheduler.
Measurement run(std::size_t n_programs, double tk_us, double tm_us, bool interleave,
                const KernelIR& kernel, std::uint64_t sigma_fp32) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), 4ull << 30, "gpu");
  // This experiment isolates engine overlap (the paper's Eq. 7/8 model has
  // no dispatch-overhead term), so the host-side service time is zeroed.
  DispatchConfig cfg;
  cfg.interleave = interleave;
  cfg.dispatch_overhead_us = 0.0;
  Dispatcher disp(q, dev, cfg);

  const double copy_bw_bytes_per_us = make_quadro4000().copy_bandwidth_gbps * 1e3;
  const std::uint64_t bytes = static_cast<std::uint64_t>(
      std::max(1.0, (tm_us - make_quadro4000().copy_latency_us) * copy_bw_bytes_per_us));
  (void)tk_us;

  SimTime makespan = 0.0;
  for (std::size_t p = 0; p < n_programs; ++p) {
    disp.register_vp();
  }
  for (std::size_t p = 0; p < n_programs; ++p) {
    const std::uint64_t buf = dev.malloc(bytes);
    auto note = [&makespan](SimTime end, const KernelExecStats*) {
      makespan = std::max(makespan, end);
    };
    Job h2d;
    h2d.vp_id = static_cast<std::uint32_t>(p);
    h2d.seq_in_vp = 0;
    h2d.kind = JobKind::kMemcpyH2D;
    h2d.device_addr = buf;
    h2d.bytes = bytes;
    h2d.on_complete = note;
    disp.submit(std::move(h2d));

    Job kj;
    kj.vp_id = static_cast<std::uint32_t>(p);
    kj.seq_in_vp = 1;
    kj.kind = JobKind::kKernel;
    kj.launch.request.kernel = &kernel;
    kj.launch.request.dims = synth_dims();
    kj.launch.request.mode = ExecMode::kAnalytic;
    kj.launch.request.analytic_profile.instr_counts[InstrClass::kFp32] = sigma_fp32;
    kj.launch.request.mem_behavior = MemoryBehavior{1024, 64, 0.9, 0.97};
    kj.on_complete = note;
    disp.submit(std::move(kj));

    Job d2h;
    d2h.vp_id = static_cast<std::uint32_t>(p);
    d2h.seq_in_vp = 2;
    d2h.kind = JobKind::kMemcpyD2H;
    d2h.device_addr = buf;
    d2h.bytes = bytes;
    d2h.on_complete = note;
    disp.submit(std::move(d2h));
  }
  q.run();
  return Measurement{makespan};
}

double expected_speedup(std::size_t n, double tk_us, double tm_us) {
  const double serial = static_cast<double>(n) * (2.0 * tm_us + tk_us);
  const double pipelined =
      2.0 * tm_us + static_cast<double>(n) * std::max(tm_us, tk_us);
  return serial / pipelined;
}

}  // namespace
}  // namespace sigvp

int main() {
  using namespace sigvp;
  const KernelIR kernel = make_synthetic_kernel();
  const double tm_us = us_from_ms(13.44);  // the paper's fixed memcpy time

  std::cout << "== Fig. 9(a): Kernel Interleaving speedup vs kernel length "
            << "(2 programs, Tm = 13.44 ms) ==\n\n";
  TablePrinter a({"Kernel time (ms)", "Speedup (measured)", "Speedup (expected, Eq.7)"});
  for (double tk_ms : {2.0, 5.0, 10.0, 13.44, 20.0, 40.0, 60.0, 80.0, 100.0}) {
    const double tk_us = us_from_ms(tk_ms);
    const std::uint64_t sigma = sigma_for_duration(kernel, tk_us);
    const auto serial = run(2, tk_us, tm_us, false, kernel, sigma);
    const auto inter = run(2, tk_us, tm_us, true, kernel, sigma);
    a.add_row({fmt_ms(tk_ms), fmt_ratio(serial.makespan_us / inter.makespan_us),
               fmt_ratio(expected_speedup(2, tk_us, tm_us))});
  }
  a.print(std::cout);
  std::cout << "\n(The peak sits near Tk = Tm = 13.44 ms — the latency-hiding "
            << "sweet spot the paper highlights.)\n";

  std::cout << "\n== Fig. 9(b): speedup vs number of interleaved programs "
            << "(Tk = Tm) ==\n\n";
  TablePrinter b({"Programs", "Speedup (measured)", "Expected 3N/(2+N) (Eq.8)"});
  const std::uint64_t sigma_eq = sigma_for_duration(kernel, tm_us);
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    const auto serial = run(n, tm_us, tm_us, false, kernel, sigma_eq);
    const auto inter = run(n, tm_us, tm_us, true, kernel, sigma_eq);
    b.add_row({fmt_int(static_cast<long long>(n)),
               fmt_ratio(serial.makespan_us / inter.makespan_us),
               fmt_ratio(3.0 * static_cast<double>(n) / (2.0 + static_cast<double>(n)))});
  }
  b.print(std::cout);
  std::cout << "\n(Approaches 3x for many programs, as in the paper.)\n";
  return 0;
}
