// App-shaped workload suite under seeded open-loop traffic (DESIGN.md §13):
// the three multi-kernel pipeline apps (graphAnalytics, mlInference,
// camPipeline) served as per-VP request streams with Poisson and bursty
// ON/OFF arrivals, at VP counts {4, 8}, coalescing off vs on. Reports
// per-request latency percentiles (p50/p95/p99) per scenario — sim-domain,
// bit-identical for any --workers.
//
// The suite also demonstrates the almost-identical-kernel regime the
// coalescer must respect: graph/ml streams run with per-VP scalar jitter
// (same kernel fingerprints, different f32 parameters) so their eligible
// stages must NOT merge, while camPipeline runs with canonical scalars so
// its gain/quant stages DO merge — the bench fails if either side of that
// contract breaks, or if coalescing produces no latency delta for cam.
//
// Job construction lives in app_suite_jobs.hpp, shared with the
// soak_recovery kill–resume harness.
//
//   app_suite [--workers N] [--json PATH] [--trace PATH]
//             [--snapshot-dir PATH] [--snapshot-every US] [--resume FILE]

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "app_suite_jobs.hpp"
#include "core/scenario.hpp"
#include "run/json_writer.hpp"
#include "run/sweep.hpp"
#include "run/traffic.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

bool check(bool ok, const std::string& what) {
  if (!ok) std::cerr << "FAIL: " << what << "\n";
  return ok;
}

}  // namespace
}  // namespace sigvp

int main(int argc, char** argv) {
  using namespace sigvp;
  using run::traffic::Shape;
  const run::SweepCli cli = run::parse_sweep_cli(argc, argv, "BENCH_app_suite.json");
  const auto suite = workloads::make_app_suite();

  std::cout << "== App suite: open-loop traffic, latency percentiles ==\n"
            << "   (" << appsuite::kRequestsPerVp << " requests/VP, mean inter-arrival "
            << appsuite::kMeanInterarrivalUs << " us, n=" << appsuite::kBenchN
            << ", analytic SigmaVP)\n\n";

  const std::vector<run::SweepJob> jobs = appsuite::build_app_suite_jobs(suite);

  const run::SweepRunner runner(cli.workers);
  run::SweepResumeInfo resume;
  const run::SweepResult sweep = runner.run(jobs, cli.snapshot_options(), &resume);
  if (!resume.resumed_from.empty()) {
    std::cout << "[snapshot] resumed " << resume.jobs_resumed << "/" << jobs.size()
              << " jobs from " << resume.resumed_from << "\n\n";
  }

  TablePrinter t({"Scenario", "Reqs", "p50 (ms)", "p95 (ms)", "p99 (ms)", "Mean (ms)",
                  "Makespan (ms)", "Groups"});
  for (const run::SweepJobResult& j : sweep.jobs) {
    const ScenarioResult& r = j.result;
    t.add_row({j.name, std::to_string(r.requests_completed),
               fmt_fixed(r.latency.quantile(0.50) / 1e3, 2),
               fmt_fixed(r.latency.quantile(0.95) / 1e3, 2),
               fmt_fixed(r.latency.quantile(0.99) / 1e3, 2),
               fmt_fixed(r.latency.mean() / 1e3, 2), fmt_fixed(r.makespan_us / 1e3, 1),
               std::to_string(r.coalesced_groups)});
  }
  t.print(std::cout);

  // -- Contract checks -----------------------------------------------------
  bool ok = true;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const run::SweepJobResult& j = sweep.jobs[i];
    const ScenarioResult& r = j.result;
    std::uint64_t expected = 0;
    for (const AppInstance& a : jobs[i].apps) expected += a.arrivals.size();
    ok = check(r.requests_completed == expected,
               j.name + ": served " + std::to_string(r.requests_completed) + " of " +
                   std::to_string(expected) + " requests") &&
         ok;
    ok = check(r.latency.count == expected, j.name + ": latency histogram incomplete") && ok;
    const double p50 = r.latency.quantile(0.50);
    const double p95 = r.latency.quantile(0.95);
    const double p99 = r.latency.quantile(0.99);
    ok = check(p50 <= p95 && p95 <= p99, j.name + ": percentiles not monotone") && ok;

    const bool coal_on = j.name.size() >= 5 && j.name.rfind("/coal") == j.name.size() - 5;
    if (j.group == "camPipeline" && coal_on) {
      // Canonical scalars: eligible stages from different VPs must merge.
      ok = check(r.coalesced_groups > 0, j.name + ": expected coalesced groups") && ok;
    }
    if ((j.group == "graphAnalytics" || j.group == "mlInference") && coal_on) {
      // Scalar jitter blocks merging even though fingerprints match.
      ok = check(r.coalesced_groups == 0,
                 j.name + ": jittered scalars must not coalesce (got " +
                     std::to_string(r.coalesced_groups) + " groups)") &&
           ok;
    }
  }

  // Coalescing must actually move the latency needle for cam under load.
  double max_delta_pct = 0.0;
  for (const Shape shape : {Shape::kPoisson, Shape::kBursty}) {
    for (const std::size_t vps : {4, 8}) {
      const std::string base = std::string("camPipeline/") + run::traffic::shape_name(shape) +
                               "/vps" + std::to_string(vps);
      const ScenarioResult& off = sweep.find(base + "/nocoal").result;
      const ScenarioResult& on = sweep.find(base + "/coal").result;
      const double delta_pct =
          off.latency.mean() > 0.0
              ? 100.0 * (off.latency.mean() - on.latency.mean()) / off.latency.mean()
              : 0.0;
      max_delta_pct = std::max(max_delta_pct, delta_pct);
      std::cout << base << ": mean latency " << fmt_fixed(off.latency.mean() / 1e3, 2)
                << " ms -> " << fmt_fixed(on.latency.mean() / 1e3, 2) << " ms ("
                << fmt_fixed(delta_pct, 1) << "% with coalescing, " << on.coalesced_groups
                << " groups x " << on.coalesced_jobs << " jobs)\n";
    }
  }
  ok = check(max_delta_pct > 0.0,
             "coalescing never improved camPipeline mean latency under load") &&
       ok;

  if (!ok) return 1;
  std::cout << "\nAll app-suite traffic contracts hold.\n";

  if (!run::try_write_sweep_json(sweep, "app_suite", cli.json_path)) return 1;
  std::cout << "[bench] results -> " << cli.json_path << "\n";
  if (!run::flush_trace()) return 1;
  return 0;
}
