// Reproduces Fig. 11 of the paper: the full application suite on eight
// concurrent VPs, comparing
//   (blue bar)   software GPU emulation on the VPs,
//   (red line)   ΣVP host-GPU multiplexing, and
//   (green line) ΣVP plus the two optimizations (Kernel Interleaving with
//                asynchronous reordering + Kernel Coalescing).
// The paper reports multiplexing speedups of 622x–2045x and optimized
// speedups of 1098x–6304x over the emulation baseline.
//
// The 60 scenario runs (20 apps x 3 configurations) are independent design
// points, so they are sharded across host cores by the sweep runner:
//   fig11_suite [--workers N] [--json PATH]
// Results are bit-identical for every N (each job owns its private event
// queue); only the host wall-clock changes.

#include <iostream>

#include "core/scenario.hpp"
#include "run/json_writer.hpp"
#include "run/sweep.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

constexpr std::size_t kNumVps = 8;

run::SweepJob make_job(const workloads::Workload& w, Backend backend, bool optimized,
                       const std::string& variant) {
  run::SweepJob job;
  job.name = w.app + "/" + variant;
  job.group = w.app;
  job.config.backend = backend;
  job.config.mode = ExecMode::kAnalytic;
  if (optimized) {
    job.config.dispatch.interleave = true;
    job.config.dispatch.coalesce = true;
    job.config.dispatch.coalesce_eager_peers = kNumVps - 1;
    job.config.async_launches = true;
  }
  job.apps = replicate(w, w.default_n, kNumVps);
  return job;
}

}  // namespace
}  // namespace sigvp

int main(int argc, char** argv) {
  using namespace sigvp;
  const run::SweepCli cli = run::parse_sweep_cli(argc, argv, "BENCH_fig11_suite.json");
  std::cout << "== Fig. 11: GPU emulation on 8 VPs vs SigmaVP multiplexing, "
            << "per application ==\n\n";

  const auto suite = workloads::make_suite();
  std::vector<run::SweepJob> jobs;
  for (const auto& w : suite) {
    jobs.push_back(make_job(w, Backend::kEmulationOnVp, false, "emul"));
    jobs.push_back(make_job(w, Backend::kSigmaVp, false, "plain"));
    jobs.push_back(make_job(w, Backend::kSigmaVp, true, "opt"));
  }

  const run::SweepRunner runner(cli.workers);
  const run::SweepResult sweep = runner.run(jobs);

  TablePrinter t({"Application", "Emulation (s)", "Multiplexed (ms)", "Speedup",
                  "Optimized (ms)", "Speedup(opt)", "Opt gain"});
  RunningStats plain_speedups, opt_speedups;
  for (const auto& w : suite) {
    const ScenarioResult& emul = sweep.find(w.app + "/emul").result;
    const ScenarioResult& plain = sweep.find(w.app + "/plain").result;
    const ScenarioResult& opt = sweep.find(w.app + "/opt").result;

    const double sp_plain = sweep.speedup(w.app + "/plain", w.app + "/emul");
    const double sp_opt = sweep.speedup(w.app + "/opt", w.app + "/emul");
    plain_speedups.add(sp_plain);
    opt_speedups.add(sp_opt);

    t.add_row({w.app, fmt_fixed(s_from_us(emul.makespan_us), 1),
               fmt_fixed(ms_from_us(plain.makespan_us), 1), fmt_fixed(sp_plain, 0),
               fmt_fixed(ms_from_us(opt.makespan_us), 1), fmt_fixed(sp_opt, 0),
               fmt_ratio(sp_opt / sp_plain)});
  }
  t.print(std::cout);

  std::cout << "\nMultiplexing speedup range: " << fmt_fixed(plain_speedups.min(), 0) << "x - "
            << fmt_fixed(plain_speedups.max(), 0) << "x (paper: 622x - 2045x)\n";
  std::cout << "Optimized speedup range:    " << fmt_fixed(opt_speedups.min(), 0) << "x - "
            << fmt_fixed(opt_speedups.max(), 0) << "x (paper: 1098x - 6304x)\n";
  std::cout << "\nPer the paper's analysis: FP-light apps (SobelFilter, stereoDisparity,\n"
            << "mergeSort, VolumeFiltering) and OpenGL/file-I/O-heavy apps (simpleGL,\n"
            << "marchingCubes, smokeParticles, ...) sit at the low end; the\n"
            << "optimizations barely move convolutionSeparable, dct8x8, SobelFilter,\n"
            << "MonteCarlo, nbody and smokeParticles (memory/layout-bound kernels).\n";

  if (!try_write_sweep_json(sweep, "fig11_suite", cli.json_path)) return 1;
  std::cout << "\n[sweep] " << sweep.jobs.size() << " scenarios on " << sweep.workers
            << " workers in " << fmt_fixed(sweep.wall_ms, 0) << " ms -> " << cli.json_path
            << "\n";
  if (!run::flush_trace()) return 1;
  return 0;
}
