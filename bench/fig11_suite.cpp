// Reproduces Fig. 11 of the paper: the full application suite on eight
// concurrent VPs, comparing
//   (blue bar)   software GPU emulation on the VPs,
//   (red line)   ΣVP host-GPU multiplexing, and
//   (green line) ΣVP plus the two optimizations (Kernel Interleaving with
//                asynchronous reordering + Kernel Coalescing).
// The paper reports multiplexing speedups of 622x–2045x and optimized
// speedups of 1098x–6304x over the emulation baseline.

#include <iostream>

#include "core/scenario.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

constexpr std::size_t kNumVps = 8;

ScenarioResult run_backend(const workloads::Workload& w, Backend backend,
                           bool optimized) {
  ScenarioConfig cfg;
  cfg.backend = backend;
  cfg.mode = ExecMode::kAnalytic;
  if (optimized) {
    cfg.dispatch.interleave = true;
    cfg.dispatch.coalesce = true;
    cfg.dispatch.coalesce_eager_peers = kNumVps - 1;
    cfg.async_launches = true;
  }
  return run_scenario(cfg, replicate(w, w.default_n, kNumVps));
}

}  // namespace
}  // namespace sigvp

int main() {
  using namespace sigvp;
  std::cout << "== Fig. 11: GPU emulation on 8 VPs vs SigmaVP multiplexing, "
            << "per application ==\n\n";

  TablePrinter t({"Application", "Emulation (s)", "Multiplexed (ms)", "Speedup",
                  "Optimized (ms)", "Speedup(opt)", "Opt gain"});

  RunningStats plain_speedups, opt_speedups;
  const auto suite = workloads::make_suite();
  for (const auto& w : suite) {
    const ScenarioResult emul = run_backend(w, Backend::kEmulationOnVp, false);
    const ScenarioResult plain = run_backend(w, Backend::kSigmaVp, false);
    const ScenarioResult opt = run_backend(w, Backend::kSigmaVp, true);

    const double sp_plain = emul.makespan_us / plain.makespan_us;
    const double sp_opt = emul.makespan_us / opt.makespan_us;
    plain_speedups.add(sp_plain);
    opt_speedups.add(sp_opt);

    t.add_row({w.app, fmt_fixed(s_from_us(emul.makespan_us), 1),
               fmt_fixed(ms_from_us(plain.makespan_us), 1), fmt_fixed(sp_plain, 0),
               fmt_fixed(ms_from_us(opt.makespan_us), 1), fmt_fixed(sp_opt, 0),
               fmt_ratio(sp_opt / sp_plain)});
  }
  t.print(std::cout);

  std::cout << "\nMultiplexing speedup range: " << fmt_fixed(plain_speedups.min(), 0) << "x - "
            << fmt_fixed(plain_speedups.max(), 0) << "x (paper: 622x - 2045x)\n";
  std::cout << "Optimized speedup range:    " << fmt_fixed(opt_speedups.min(), 0) << "x - "
            << fmt_fixed(opt_speedups.max(), 0) << "x (paper: 1098x - 6304x)\n";
  std::cout << "\nPer the paper's analysis: FP-light apps (SobelFilter, stereoDisparity,\n"
            << "mergeSort, VolumeFiltering) and OpenGL/file-I/O-heavy apps (simpleGL,\n"
            << "marchingCubes, smokeParticles, ...) sit at the low end; the\n"
            << "optimizations barely move convolutionSeparable, dct8x8, SobelFilter,\n"
            << "MonteCarlo, nbody and smokeParticles (memory/layout-bound kernels).\n";
  return 0;
}
