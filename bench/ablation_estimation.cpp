// Ablation (ours): Profile-Based Execution Analysis accuracy across the
// WHOLE workload suite, not just the paper's four Fig. 12 kernels — every
// kernel is profiled on the Quadro 4000 model and its Tegra K1 time/power
// predicted, then compared against the target-device model.
//
// The 20 per-kernel evaluations are independent (each owns its address
// space and interpreter), so they are sharded across host cores with
// parallel_for into indexed slots; the table prints in suite order and is
// byte-identical for any --workers N.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "estimate/estimator.hpp"
#include "run/sweep.hpp"
#include "run/thread_pool.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

using bench::evaluate_workload_on;

struct Row {
  double c_ratio = 0.0;
  double c1_ratio = 0.0;
  double c2_ratio = 0.0;
  double p_ratio = 0.0;
};

}  // namespace
}  // namespace sigvp

int main(int argc, char** argv) {
  using namespace sigvp;
  const run::SweepCli cli = run::parse_sweep_cli(argc, argv, "");
  const GpuArch host = make_quadro4000();
  const GpuArch target = make_tegrak1();

  std::cout << "== Ablation: estimation accuracy over the full suite "
            << "(host profile: " << host.name << ", target: Tegra K1) ==\n\n";

  const auto suite = workloads::make_suite();
  std::vector<Row> rows(suite.size());
  {
    run::ThreadPool pool(cli.workers == 0 ? run::ThreadPool::default_workers()
                                          : cli.workers);
    run::parallel_for(pool, suite.size(), [&](std::size_t idx) {
      const workloads::Workload& w = suite[idx];
      const std::uint64_t n = w.estimate_n ? w.estimate_n : w.test_n;
      const LaunchEvaluation on_host = evaluate_workload_on(w, n, host);
      const LaunchEvaluation on_target = evaluate_workload_on(w, n, target);

      ProfileBasedEstimator est(host, target);
      EstimationInput in;
      in.kernel = &w.kernel;
      in.dims = w.dims(n);
      in.lambda = on_host.profile.block_visits;
      in.host_stats = on_host.stats;
      in.behavior = w.behavior(n);
      const TimingEstimates ts = est.estimate_time(in);
      const double p_est = est.estimate_power_w(in, ts);

      const double obs = on_target.stats.total_cycles;
      const double kernel_us = on_target.stats.duration_us - target.launch_overhead_us;
      const double p_obs =
          target.static_power_w + on_target.stats.dynamic_energy_j / s_from_us(kernel_us);

      rows[idx] = Row{ts.c_cycles / obs, ts.c1_cycles / obs, ts.c2_cycles / obs,
                      p_est / p_obs};
    });
  }

  TablePrinter t({"Kernel", "C/obs", "C'/obs", "C''/obs", "P_est/P_obs"});
  RunningStats err_c, err_c2, err_p;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const Row& r = rows[i];
    err_c.add(std::abs(r.c_ratio - 1.0));
    err_c2.add(std::abs(r.c2_ratio - 1.0));
    err_p.add(std::abs(r.p_ratio - 1.0));
    t.add_row({suite[i].app, fmt_fixed(r.c_ratio, 2), fmt_fixed(r.c1_ratio, 2),
               fmt_fixed(r.c2_ratio, 2), fmt_fixed(r.p_ratio, 2)});
  }
  t.print(std::cout);
  std::cout << "\nMean abs error over 20 kernels: C " << fmt_fixed(100.0 * err_c.mean(), 1)
            << "%, C'' " << fmt_fixed(100.0 * err_c2.mean(), 1) << "%, power "
            << fmt_fixed(100.0 * err_p.mean(), 1) << "%\n";
  std::cout << "(The refinement chain C -> C' -> C'' of the paper's Eq. 2-5 holds\n"
            << " beyond the four kernels the paper evaluates.)\n";
  if (!run::flush_trace()) return 1;
  return 0;
}
