// Measures the Tier-2 threaded-code engine (DESIGN.md §15) against the
// Tier-1 interpreter: per-kernel Minstr/s Tier-1-forced vs tiered across the
// full Fig. 11 workload suite plus the app-pipeline stages, with promotion
// and fusion counts alongside.
//
//   tier_throughput [--n SIZE] [--reps R] [--json PATH] [--trace PATH]
//
// Every tiered run is differenced against the Tier-1 profile AND the final
// memory image (full-space hash) — any mismatch makes the bench exit
// nonzero, so the speedup numbers can never outlive the byte-exactness
// contract they advertise. Promotion bookkeeping (promoted flag, compiles,
// fused superinstructions per kernel) is a pure function of the launch
// stream; scripts/bench_regression_check.py compares it exactly.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "interp/interpreter.hpp"
#include "interp/tier2.hpp"
#include "mem/address_space.hpp"
#include "mem/allocator.hpp"
#include "run/json_writer.hpp"
#include "run/sweep.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

constexpr std::uint64_t kSpace = 256ull * 1024 * 1024;

/// One kernel to bench: a suite workload, or one stage of an app pipeline
/// (which reuses the owning workload's buffer set).
struct BenchUnit {
  std::string app;
  std::string kernel_name;
  const KernelIR* kernel = nullptr;
  std::uint64_t n = 0;
  LaunchDims dims;
  std::function<KernelArgs(const std::vector<std::uint64_t>& addrs)> args;
  const workloads::Workload* buffers_of = nullptr;  // whose buffers(n) to allocate
};

struct UnitResult {
  std::string app;
  std::string kernel;
  std::uint64_t n = 0;
  std::uint64_t instrs = 0;
  bool promoted = false;
  std::uint64_t compiles = 0;
  std::uint64_t fused = 0;
  double t1_minstr_s = 0.0;
  double t2_minstr_s = 0.0;
  double speedup = 0.0;
};

/// One launch on fresh memory; returns the profile, the post-run full-space
/// memory hash, and the wall-clock of the `run` call alone.
DynamicProfile one_run(const BenchUnit& u, double& wall_ms, std::uint64_t& mem_hash) {
  AddressSpace mem(kSpace, "bench");
  FreeListAllocator alloc(4096, mem.size() - 4096);
  const auto specs = u.buffers_of->buffers(u.n);
  std::vector<std::uint64_t> addrs;
  std::vector<std::vector<std::uint8_t>> host(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto a = alloc.allocate(specs[i].bytes);
    SIGVP_REQUIRE(a.has_value(), u.app + ": bench arena too small for n");
    addrs.push_back(*a);
    host[i].assign(specs[i].bytes, 0);
  }
  // Real input data when the workload provides it (pipeline stages read
  // indices/weights from memory); flat 0.5f fill otherwise.
  if (u.buffers_of->fill_inputs) {
    u.buffers_of->fill_inputs(u.n, host);
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (!specs[i].is_input) continue;
      for (std::uint64_t off = 0; off + 4 <= specs[i].bytes; off += 4) {
        const float v = 0.5f;
        std::memcpy(host[i].data() + off, &v, 4);
      }
    }
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].is_input) mem.copy_in(addrs[i], host[i].data(), host[i].size());
  }
  Interpreter interp;
  Interpreter::Options options;
  options.workers = 1;  // per-kernel dispatch throughput, not grid parallelism
  const auto start = std::chrono::steady_clock::now();
  DynamicProfile profile = interp.run(*u.kernel, u.dims, u.args(addrs), mem, options);
  wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  mem_hash = mem.hash_range(0, mem.size(), kMemHashSeed);
  return profile;
}

bool profiles_equal(const DynamicProfile& a, const DynamicProfile& b) {
  return a.block_visits == b.block_visits &&
         a.instr_counts.counts == b.instr_counts.counts &&
         a.global_load_bytes == b.global_load_bytes &&
         a.global_store_bytes == b.global_store_bytes &&
         a.barriers_waited == b.barriers_waited && a.sfu_instrs == b.sfu_instrs &&
         a.sqrt_instrs == b.sqrt_instrs;
}

std::string to_json(const std::vector<UnitResult>& units, std::size_t reps) {
  using run::json::escape;
  using run::json::number;
  std::uint64_t promoted_kernels = 0, total_compiles = 0, total_fused = 0;
  double best_speedup = 0.0;
  std::uint64_t kernels_ge_1_5x = 0;
  for (const UnitResult& u : units) {
    if (u.promoted) ++promoted_kernels;
    total_compiles += u.compiles;
    total_fused += u.fused;
    best_speedup = std::max(best_speedup, u.speedup);
    if (u.promoted && u.speedup >= 1.5) ++kernels_ge_1_5x;
  }
  std::ostringstream os;
  os << "{\n  \"bench\": \"tier_throughput\",\n";
  os << "  \"workers\": 1,\n  \"reps\": " << reps << ",\n";
  os << "  \"promoted_kernels\": " << promoted_kernels << ",\n";
  os << "  \"total_compiles\": " << total_compiles << ",\n";
  os << "  \"total_fused_superinsts\": " << total_fused << ",\n";
  os << "  \"best_speedup\": " << number(best_speedup) << ",\n";
  os << "  \"kernels_ge_1_5x\": " << kernels_ge_1_5x << ",\n";
  os << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < units.size(); ++i) {
    const UnitResult& u = units[i];
    os << "    {\"kernel\": \"" << escape(u.kernel) << "\", \"app\": \"" << escape(u.app)
       << "\", \"n\": " << u.n << ", \"instrs\": " << u.instrs
       << ", \"promoted\": " << (u.promoted ? "true" : "false")
       << ", \"compiles\": " << u.compiles << ", \"fused_superinsts\": " << u.fused
       << ", \"t1_minstr_per_sec\": " << number(u.t1_minstr_s)
       << ", \"t2_minstr_per_sec\": " << number(u.t2_minstr_s)
       << ", \"speedup\": " << number(u.speedup) << "}";
    os << (i + 1 != units.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace
}  // namespace sigvp

int main(int argc, char** argv) {
  using namespace sigvp;

  std::uint64_t size_override = 0;
  std::size_t reps = 3;
  std::string json_path = "BENCH_tier.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--n" && i + 1 < argc) {
      size_override = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::max<std::size_t>(1, std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace::Tracer::enable(argv[++i]);
    }
  }

  std::cout << "== tier_throughput: Tier-1 interpreter vs Tier-2 threaded code ==\n\n";

  const auto suite = workloads::make_suite();
  const auto apps = workloads::make_app_suite();

  std::vector<BenchUnit> units;
  for (const auto& w : suite) {
    BenchUnit u;
    u.app = w.app;
    u.kernel_name = w.kernel.name;
    u.kernel = &w.kernel;
    u.n = size_override != 0 ? size_override : (w.estimate_n != 0 ? w.estimate_n : w.test_n);
    u.dims = w.dims(u.n);
    u.args = [&w, n = u.n](const std::vector<std::uint64_t>& addrs) {
      return w.args(addrs, n);
    };
    u.buffers_of = &w;
    units.push_back(std::move(u));
  }
  for (const auto& w : apps) {
    for (const auto& stage : w.stages) {
      BenchUnit u;
      u.app = w.app;
      u.kernel_name = stage.kernel.name;
      u.kernel = &stage.kernel;
      u.n = size_override != 0 ? size_override
                               : (w.estimate_n != 0 ? w.estimate_n : w.test_n);
      u.dims = stage.dims(u.n);
      u.args = [&stage, n = u.n](const std::vector<std::uint64_t>& addrs) {
        return stage.args(addrs, n, /*jitter=*/0);
      };
      u.buffers_of = &w;
      units.push_back(std::move(u));
    }
  }

  Tier2Engine& engine = Tier2Engine::instance();
  const Tier2Engine::Mode saved_mode = engine.mode();

  std::vector<UnitResult> results;
  bool mismatch = false;

  TablePrinter table({"Kernel", "App", "Instrs", "Promoted", "Fused", "T1 Minstr/s",
                      "T2 Minstr/s", "Speedup"});

  for (const BenchUnit& u : units) {
    // --- Tier-1 forced reference ------------------------------------------
    engine.set_mode(Tier2Engine::Mode::kForceTier1);
    double t1_best_ms = 0.0;
    std::uint64_t ref_hash = 0;
    DynamicProfile reference;
    for (std::size_t r = 0; r < reps; ++r) {
      double ms = 0.0;
      std::uint64_t hash = 0;
      DynamicProfile p = one_run(u, ms, hash);
      if (r == 0) {
        reference = p;
        ref_hash = hash;
      } else if (!profiles_equal(p, reference) || hash != ref_hash) {
        std::cerr << "NONDETERMINISM: " << u.kernel_name
                  << " Tier-1 reps disagree with each other\n";
        mismatch = true;
      }
      if (r == 0 || ms < t1_best_ms) t1_best_ms = ms;
    }

    // --- Tiered (auto promotion, fresh engine state) ----------------------
    engine.reset();
    engine.set_mode(Tier2Engine::Mode::kAuto);
    const Tier2Stats before = engine.stats();
    double t2_best_ms = 0.0;
    {
      double ms = 0.0;
      std::uint64_t hash = 0;  // untimed warmup launch feeds the ordinal
      DynamicProfile p = one_run(u, ms, hash);
      if (!profiles_equal(p, reference) || hash != ref_hash) {
        std::cerr << "TIER DIVERGENCE: " << u.kernel_name << " (warmup launch)\n";
        mismatch = true;
      }
    }
    for (std::size_t r = 0; r < reps; ++r) {
      double ms = 0.0;
      std::uint64_t hash = 0;
      DynamicProfile p = one_run(u, ms, hash);
      if (!profiles_equal(p, reference) || hash != ref_hash) {
        std::cerr << "TIER DIVERGENCE: " << u.kernel_name
                  << " diverged from the Tier-1 profile/memory\n";
        mismatch = true;
      }
      if (r == 0 || ms < t2_best_ms) t2_best_ms = ms;
    }
    const Tier2Stats delta = engine.stats() - before;

    UnitResult res;
    res.app = u.app;
    res.kernel = u.kernel_name;
    res.n = u.n;
    res.instrs = reference.total_instrs();
    res.promoted = delta.launches_tier2 > 0;
    res.compiles = delta.compiles;
    res.fused = delta.fused_superinsts;
    res.t1_minstr_s =
        t1_best_ms > 0.0 ? static_cast<double>(res.instrs) / (t1_best_ms * 1e3) : 0.0;
    res.t2_minstr_s =
        t2_best_ms > 0.0 ? static_cast<double>(res.instrs) / (t2_best_ms * 1e3) : 0.0;
    res.speedup = res.t1_minstr_s > 0.0 ? res.t2_minstr_s / res.t1_minstr_s : 0.0;
    table.add_row({res.kernel, res.app, fmt_int(static_cast<long long>(res.instrs)),
                   res.promoted ? "yes" : "no", fmt_int(static_cast<long long>(res.fused)),
                   fmt_fixed(res.t1_minstr_s, 1), fmt_fixed(res.t2_minstr_s, 1),
                   fmt_ratio(res.speedup) + "x"});
    results.push_back(std::move(res));
  }

  engine.reset();
  engine.set_mode(saved_mode);

  table.print(std::cout);

  std::uint64_t promoted = 0, ge15 = 0;
  for (const UnitResult& r : results) {
    if (r.promoted) ++promoted;
    if (r.promoted && r.speedup >= 1.5) ++ge15;
  }
  std::cout << "\nPromoted " << promoted << "/" << results.size() << " kernels; " << ge15
            << " at >= 1.5x over Tier 1\n";

  if (!run::try_write_json_file(to_json(results, reps), json_path)) {
    std::cerr << "error: failed writing JSON results file: " << json_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << json_path << "\n";

  if (mismatch) {
    std::cerr << "\ntier_throughput: tier-equivalence differential FAILED\n";
    return 1;
  }
  if (!run::flush_trace()) return 1;
  return 0;
}
