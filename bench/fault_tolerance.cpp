// Fault-tolerance bench: sweeps the deterministic fault-injection layer over
// the ΣVP host stack and reports what surviving the faults costs.
//
// Fault levels per application (8 VPs, plain and optimized dispatch):
//   clean    zero-fault plan — byte-identical to a run without the fault layer
//   lossy    5% message drop + 2% transient launch failure (the acceptance
//            scenario), plus duplications and latency spikes
//   reset    lossy + two mid-run device resets (at 250 ms and 750 ms of
//            simulated time) killing all in-flight jobs
//   stall    lossy + one VP that stops consuming completions (watchdog restart)
//   storm    35% drop — exhausts retry budgets and degrades VPs to the
//            EmulationDriver fallback (graceful degradation, run terminates)
//
// Every scenario must finish with zero unrecovered jobs; the bench exits
// nonzero otherwise (CI runs it as a smoke test). Scenarios are sharded with
//   fault_tolerance [--workers N] [--json PATH]
// and results are bit-identical for every N: all fault decisions hash
// (seed, site, index) — no wall clock, no cross-scenario state.

#include <iostream>
#include <vector>

#include "core/scenario.hpp"
#include "run/json_writer.hpp"
#include "run/sweep.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

constexpr std::size_t kNumVps = 8;

FaultConfig lossy_faults() {
  FaultConfig f;
  f.drop_rate = 0.05;
  f.dup_rate = 0.02;
  f.latency_spike_rate = 0.05;
  f.launch_fail_rate = 0.02;
  return f;
}

FaultConfig make_faults(const std::string& level) {
  if (level == "clean") return {};
  if (level == "lossy") return lossy_faults();
  if (level == "reset") {
    FaultConfig f = lossy_faults();
    f.device_reset_at_us = {250000.0, 750000.0};
    return f;
  }
  if (level == "stall") {
    FaultConfig f = lossy_faults();
    f.stall_vp = 2;
    return f;
  }
  // storm
  FaultConfig f = lossy_faults();
  f.drop_rate = 0.35;
  return f;
}

run::SweepJob make_job(const workloads::Workload& w, bool optimized,
                       const std::string& level) {
  run::SweepJob job;
  job.name = w.app + "/" + (optimized ? "opt" : "plain") + "/" + level;
  job.group = w.app;
  job.config.backend = Backend::kSigmaVp;
  job.config.mode = ExecMode::kAnalytic;
  if (optimized) {
    job.config.dispatch.interleave = true;
    job.config.dispatch.coalesce = true;
    job.config.dispatch.coalesce_eager_peers = kNumVps - 1;
    job.config.async_launches = true;
  }
  job.config.fault = make_faults(level);
  job.apps = replicate(w, w.default_n, kNumVps);
  return job;
}

}  // namespace
}  // namespace sigvp

int main(int argc, char** argv) {
  using namespace sigvp;
  const run::SweepCli cli = run::parse_sweep_cli(argc, argv, "BENCH_fault_tolerance.json");
  std::cout << "== Fault tolerance: SigmaVP host stack under injected faults ==\n\n";

  const auto suite = workloads::make_suite();
  const std::vector<std::string> apps = {"vectorAdd", "matrixMul", "reduction"};
  const std::vector<std::string> levels = {"clean", "lossy", "reset", "stall", "storm"};

  std::vector<run::SweepJob> jobs;
  for (const auto& app : apps) {
    const workloads::Workload& w = workloads::find(suite, app);
    for (bool optimized : {false, true}) {
      for (const auto& level : levels) {
        jobs.push_back(make_job(w, optimized, level));
      }
    }
  }

  const run::SweepRunner runner(cli.workers);
  const run::SweepResult sweep = runner.run(jobs);

  TablePrinter t({"Scenario", "Makespan (ms)", "Overhead", "Drops", "Rexmit", "Resets",
                  "Requeue", "Fallback VPs", "Fallback jobs", "Rec mean (us)", "Lost"});
  std::uint64_t total_unrecovered = 0;
  for (const auto& app : apps) {
    for (const char* variant : {"plain", "opt"}) {
      const std::string base = app + "/" + variant + "/";
      const double clean_us = sweep.find(base + "clean").result.makespan_us;
      for (const auto& level : levels) {
        const ScenarioResult& r = sweep.find(base + level).result;
        const FaultStats& f = r.fault;
        total_unrecovered += f.unrecovered_jobs;
        t.add_row({base + level, fmt_fixed(ms_from_us(r.makespan_us), 2),
                   fmt_ratio(r.makespan_us / clean_us),
                   std::to_string(f.messages_dropped), std::to_string(f.retransmits),
                   std::to_string(f.device_resets), std::to_string(f.reset_requeues),
                   std::to_string(f.fallbacks), std::to_string(f.fallback_jobs),
                   fmt_fixed(f.recovery_latency_mean_us(), 1),
                   std::to_string(f.unrecovered_jobs)});
      }
    }
  }
  t.print(std::cout);

  if (!try_write_sweep_json(sweep, "fault_tolerance", cli.json_path)) return 1;
  std::cout << "\n[sweep] " << sweep.jobs.size() << " scenarios on " << sweep.workers
            << " workers in " << fmt_fixed(sweep.wall_ms, 0) << " ms -> " << cli.json_path
            << "\n";

  if (total_unrecovered != 0) {
    std::cerr << "FAULT-TOLERANCE FAILURE: " << total_unrecovered
              << " job(s) were lost for good\n";
    return 1;
  }
  std::cout << "All jobs recovered (0 lost) across every fault level.\n";
  if (!run::flush_trace()) return 1;
  return 0;
}
