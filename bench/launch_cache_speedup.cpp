// Measures the content-addressed launch cache (DESIGN.md §11): host
// wall-clock of functional fleet scenarios at VP counts {1, 2, 4, 8, 16},
// cache-disabled vs cache-enabled, plus a sweep-sharing phase where
// identical single-scenario jobs on different sweep workers hit each
// other's fills.
//
// The fleet premise makes the win structural: every VP launches the same
// kernels on the same input bytes, so of the VPs x iterations functional
// interpretations per scenario only the first launch of each distinct
// argument block must execute — the rest replay recorded write-sets.
//
//   launch_cache_speedup [--workers N] [--json PATH]
//
// Exits nonzero if any cached run's outputs or makespans diverge from the
// uncached run, or if the cache never hit — the determinism contract is the
// bench's precondition, not an aspiration.

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "gpu/launch_cache.hpp"
#include "run/json_writer.hpp"
#include "run/sweep.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

/// Iterations per app: uncached work scales with VPs x iterations, cached
/// work with VPs (first launch per distinct argument block) — so this also
/// bounds the per-scenario speedup the replay path can show.
constexpr std::uint32_t kIterations = 8;

/// Workloads with deterministic fill_inputs and read/write-disjoint buffers
/// (every iteration re-reads unchanged inputs, so iterations 2..k hit),
/// each at a size where interpretation cost is meaningful. An app that
/// rewrites its own inputs (e.g. nbody integrating positions) would
/// honestly miss every iteration — the hook/fault bypass tests cover that
/// behavior; this bench measures the fleet-identical case the paper's
/// premise guarantees.
struct BenchApp {
  const char* app;
  std::uint64_t n;
};
constexpr BenchApp kApps[] = {{"BlackScholes", 65536}, {"matrixMul", 96},
                              {"SobelFilter", 65536}};

run::SweepJob make_fleet_job(const workloads::Workload& w, std::uint64_t n, std::size_t vps,
                             const std::string& name) {
  run::SweepJob job;
  job.name = name;
  job.group = w.app;
  job.config.backend = Backend::kSigmaVp;
  job.config.mode = ExecMode::kFunctional;
  job.config.functional_io = true;
  // Small device memory: the benched apps need a few MB, and the per-
  // scenario zero-init would otherwise floor the cached phase's wall-clock.
  job.config.gpu_mem_bytes = 64ull * 1024 * 1024;

  workloads::AppTraits t = w.traits;
  t.iterations = kIterations;
  t.launches_per_iter = 1;
  t.iter_h2d_bytes = 0;
  t.iter_d2h_bytes = 0;
  for (std::size_t i = 0; i < vps; ++i) job.apps.push_back(AppInstance{&w, n, t});
  return job;
}

run::SweepResult run_phase(const std::vector<run::SweepJob>& jobs, std::size_t workers,
                           bool cache_on) {
  LaunchCache& cache = LaunchCache::instance();
  cache.clear();
  cache.set_enabled(cache_on);
  const run::SweepRunner runner(workers);
  return runner.run(jobs);
}

/// Byte-exact + bit-exact comparison of one job across the two phases;
/// returns false (and reports) on any divergence.
bool phases_agree(const run::SweepJobResult& uncached, const run::SweepJobResult& cached) {
  bool ok = true;
  if (uncached.result.makespan_us != cached.result.makespan_us) {
    std::cerr << "DIVERGENCE: " << uncached.name << " makespan " << uncached.result.makespan_us
              << "us uncached vs " << cached.result.makespan_us << "us cached\n";
    ok = false;
  }
  if (uncached.result.app_outputs != cached.result.app_outputs) {
    std::cerr << "DIVERGENCE: " << uncached.name << " output bytes differ with the cache on\n";
    ok = false;
  }
  return ok;
}

struct Point {
  std::size_t vps = 0;
  double wall_uncached_ms = 0.0;
  double wall_cached_ms = 0.0;
  LaunchCacheStats cache;
};

}  // namespace
}  // namespace sigvp

int main(int argc, char** argv) {
  using namespace sigvp;
  const run::SweepCli cli =
      run::parse_sweep_cli(argc, argv, "BENCH_launch_cache_speedup.json");
  const auto suite = workloads::make_suite();

  std::cout << "== Launch cache: fleet scenarios, cache-disabled vs cache-enabled ==\n"
            << "   (" << kIterations << " iterations x {";
  for (const BenchApp& a : kApps) std::cout << " " << a.app;
  std::cout << " }, functional mode with real data)\n\n";

  bool all_agree = true;
  std::vector<Point> points;
  for (const std::size_t vps : {1, 2, 4, 8, 16}) {
    std::vector<run::SweepJob> jobs;
    for (const BenchApp& a : kApps) {
      jobs.push_back(make_fleet_job(workloads::find(suite, a.app), a.n, vps,
                                    std::string(a.app) + "/vps" + std::to_string(vps)));
    }
    const run::SweepResult uncached = run_phase(jobs, cli.workers, false);
    const run::SweepResult cached = run_phase(jobs, cli.workers, true);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      all_agree = phases_agree(uncached.jobs[j], cached.jobs[j]) && all_agree;
    }
    points.push_back(Point{vps, uncached.wall_ms, cached.wall_ms, cached.cache});
  }

  TablePrinter t({"VPs", "Uncached (ms)", "Cached (ms)", "Speedup", "Hits", "Misses",
                  "Hit rate", "Replayed (MB)"});
  for (const Point& p : points) {
    const double lookups = static_cast<double>(p.cache.hits + p.cache.misses);
    t.add_row({std::to_string(p.vps), fmt_fixed(p.wall_uncached_ms, 1),
               fmt_fixed(p.wall_cached_ms, 1),
               fmt_fixed(p.wall_uncached_ms / p.wall_cached_ms, 2),
               std::to_string(p.cache.hits), std::to_string(p.cache.misses),
               fmt_fixed(lookups > 0.0 ? p.cache.hits / lookups : 0.0, 3),
               fmt_fixed(static_cast<double>(p.cache.bytes_replayed) / (1024.0 * 1024.0), 1)});
  }
  t.print(std::cout);

  // Sweep-sharing phase: identical single-fleet jobs spread across sweep
  // workers share one process-wide cache, so later jobs replay the first
  // job's fills — each job's device allocator hands out the same addresses.
  constexpr std::size_t kSharedJobs = 4;
  const workloads::Workload& shared_w = workloads::find(suite, kApps[0].app);
  std::vector<run::SweepJob> shared_jobs;
  for (std::size_t j = 0; j < kSharedJobs; ++j) {
    shared_jobs.push_back(
        make_fleet_job(shared_w, kApps[0].n, 8, "shared/p" + std::to_string(j)));
  }
  const run::SweepResult shared_uncached = run_phase(shared_jobs, cli.workers, false);
  const run::SweepResult shared_cached = run_phase(shared_jobs, cli.workers, true);
  for (std::size_t j = 0; j < shared_jobs.size(); ++j) {
    all_agree = phases_agree(shared_uncached.jobs[j], shared_cached.jobs[j]) && all_agree;
    all_agree = (shared_cached.jobs[j].result.app_outputs ==
                 shared_cached.jobs[0].result.app_outputs) &&
                all_agree;
  }
  std::cout << "\nSweep sharing: " << kSharedJobs << " identical 8-VP " << shared_w.app
            << " jobs on " << shared_cached.workers << " workers: "
            << fmt_fixed(shared_uncached.wall_ms, 1) << " ms -> "
            << fmt_fixed(shared_cached.wall_ms, 1) << " ms ("
            << fmt_fixed(shared_uncached.wall_ms / shared_cached.wall_ms, 2) << "x, "
            << shared_cached.cache.hits << " hits / " << shared_cached.cache.misses
            << " misses across jobs)\n";

  // Leave the process-wide cache the way other tools expect to find it.
  LaunchCache::instance().set_enabled(true);
  LaunchCache::instance().clear();

  std::uint64_t total_hits = shared_cached.cache.hits;
  for (const Point& p : points) total_hits += p.cache.hits;
  if (total_hits == 0) {
    std::cerr << "FAIL: the launch cache never hit — fleet launches stopped matching\n";
    return 1;
  }
  if (!all_agree) {
    std::cerr << "FAIL: cached execution diverged from uncached execution\n";
    return 1;
  }
  std::cout << "\nAll cached outputs and makespans byte-identical to uncached runs.\n";

  std::ostringstream os;
  os << "{\n  \"bench\": \"launch_cache_speedup\",\n";
  os << "  \"iterations\": " << kIterations << ",\n";
  os << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    os << "    {\"vps\": " << p.vps << ", \"wall_uncached_ms\": "
       << run::json::number(p.wall_uncached_ms)
       << ", \"wall_cached_ms\": " << run::json::number(p.wall_cached_ms)
       << ", \"speedup\": " << run::json::number(p.wall_uncached_ms / p.wall_cached_ms)
       << ", \"hits\": " << p.cache.hits << ", \"misses\": " << p.cache.misses
       << ", \"bypasses\": " << p.cache.bypasses
       << ", \"bytes_replayed\": " << p.cache.bytes_replayed << "}";
    os << (i + 1 == points.size() ? "\n" : ",\n");
  }
  os << "  ],\n";
  os << "  \"shared_sweep\": {\"jobs\": " << kSharedJobs
     << ", \"wall_uncached_ms\": " << run::json::number(shared_uncached.wall_ms)
     << ", \"wall_cached_ms\": " << run::json::number(shared_cached.wall_ms)
     << ", \"speedup\": "
     << run::json::number(shared_uncached.wall_ms / shared_cached.wall_ms)
     << ", \"hits\": " << shared_cached.cache.hits
     << ", \"misses\": " << shared_cached.cache.misses << "}\n";
  os << "}\n";
  if (!run::try_write_json_file(os.str(), cli.json_path)) {
    std::cerr << "error: failed writing JSON results file: " << cli.json_path << "\n";
    return 1;
  }
  std::cout << "[bench] results -> " << cli.json_path << "\n";
  if (!run::flush_trace()) return 1;
  return 0;
}
