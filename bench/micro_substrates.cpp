// Micro-benchmarks of the simulation substrates (google-benchmark):
// host-side throughput of the event queue, the IR interpreter, the cache
// simulator, and the analytic cost model. These bound how fast ΣVP
// experiments themselves run.

#include <benchmark/benchmark.h>

#include "gpu/cache.hpp"
#include "gpu/offline.hpp"
#include "interp/interpreter.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

void BM_EventQueueSchedule(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      q.schedule_at(static_cast<SimTime>(i % 97), [&sink] { ++sink; });
    }
    q.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueSchedule);

void BM_InterpreterVectorAdd(benchmark::State& state) {
  const workloads::Workload w = workloads::make_vector_add();
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  AddressSpace mem(64ull << 20, "m");
  KernelArgs args = w.args({4096, 4096 + 4 * n, 4096 + 8 * n}, n);
  Interpreter interp;
  std::uint64_t instrs = 0;
  for (auto _ : state) {
    const DynamicProfile p = interp.run(w.kernel, w.dims(n), args, mem);
    instrs = p.total_instrs();
    benchmark::DoNotOptimize(p.instr_counts);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(instrs));
  state.SetLabel("guest-instrs/s");
}
BENCHMARK(BM_InterpreterVectorAdd)->Arg(1 << 10)->Arg(1 << 14);

void BM_CacheModelAccess(benchmark::State& state) {
  CacheModel cache(CacheConfig{512 * 1024, 128, 8});
  Rng rng(42);
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      cache.access(rng.next_below(8u << 20), 4);
    }
  }
  benchmark::DoNotOptimize(cache.stats().misses);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CacheModelAccess);

void BM_AnalyticLaunchPricing(benchmark::State& state) {
  const workloads::Workload w = workloads::make_black_scholes();
  const std::uint64_t n = w.default_n;
  const DynamicProfile p = w.profile(n);
  const MemoryBehavior b = w.behavior(n);
  const GpuArch arch = make_quadro4000();
  for (auto _ : state) {
    const KernelExecStats s = evaluate_analytic(arch, w.kernel, w.dims(n), p, b);
    benchmark::DoNotOptimize(s.total_cycles);
  }
}
BENCHMARK(BM_AnalyticLaunchPricing);

void BM_ProfileDerivation(benchmark::State& state) {
  const workloads::Workload w = workloads::make_matrix_mul();
  for (auto _ : state) {
    const DynamicProfile p = w.profile(320);
    benchmark::DoNotOptimize(p.instr_counts);
  }
}
BENCHMARK(BM_ProfileDerivation);

}  // namespace
}  // namespace sigvp
