// Reproduces Table 1 of the paper: execution time of 300 invocations of a
// 320x320 double-precision matrix multiplication under six configurations.
//
// The paper's measured values are printed alongside ours; absolute times
// differ (our substrate is a calibrated model, not the authors' testbed) but
// the ordering and the rough ratios are the claims under reproduction.

#include <iostream>

#include "core/scenario.hpp"
#include "util/table.hpp"
#include "vp/emulation_driver.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

constexpr std::uint64_t kM = 320;
constexpr std::uint32_t kIterations = 300;

workloads::AppTraits table1_traits() {
  // The program uploads both matrices once, invokes the kernel 300 times,
  // and downloads the product at the end (AppRun's setup/teardown copies).
  workloads::AppTraits t;
  t.iterations = kIterations;
  t.launches_per_iter = 1;
  t.iter_h2d_bytes = 0;
  t.iter_d2h_bytes = 0;
  t.noncuda_guest_instrs = 0;
  t.coalescable = false;
  return t;
}

SimTime run_backend(Backend backend) {
  const workloads::Workload w = workloads::make_matrix_mul();
  ScenarioConfig cfg;
  cfg.backend = backend;
  cfg.mode = ExecMode::kAnalytic;
  AppInstance app{&w, kM, table1_traits()};
  return run_scenario(cfg, {app}).makespan_us;
}

/// The plain-C implementation: the same arithmetic executed scalar on a CPU.
/// Uses the class-weighted instruction model so that the emulator's measured
/// 1.113x overhead over C (Table 1) is preserved by construction.
double c_version_ms(double ips) {
  const workloads::Workload w = workloads::make_matrix_mul();
  const DynamicProfile p = w.profile(kM);
  EmulationConfig cfg;  // only the weights are used here
  double weighted = static_cast<double>(p.sfu_instrs) * cfg.sfu_extra_weight +
                    static_cast<double>(p.sqrt_instrs) * cfg.sqrt_extra_weight;
  for (InstrClass c : kAllInstrClasses) {
    weighted += static_cast<double>(p.instr_counts[c]) * cfg.class_weight[c];
  }
  const double per_iter_s = weighted / ips;
  return per_iter_s * 1e3 * kIterations;
}

}  // namespace
}  // namespace sigvp

int main() {
  using namespace sigvp;
  std::cout << "== Table 1: execution time of matrix multiplication "
            << "(320x320 FP64, 300 invocations) ==\n\n";

  const double t_gpu = ms_from_us(run_backend(Backend::kNativeGpu));
  const double t_emul_cpu = ms_from_us(run_backend(Backend::kEmulationHostCpu));
  const double t_emul_vp = ms_from_us(run_backend(Backend::kEmulationOnVp));
  const double t_sigma = ms_from_us(run_backend(Backend::kSigmaVp));

  const Calibration calib;
  const double t_c_cpu = c_version_ms(calib.host_cpu.effective_ips);
  const double t_c_vp = t_c_cpu * calib.vp.bt_slowdown;

  TablePrinter t({"Language", "Executed by", "Time (ms)", "Ratio", "Paper (ms)", "Paper ratio"});
  auto row = [&](const char* lang, const char* by, double ms, double paper_ms,
                 double paper_ratio) {
    t.add_row({lang, by, fmt_ms(ms), fmt_ratio(ms / t_gpu), fmt_ms(paper_ms),
               fmt_ratio(paper_ratio)});
  };
  row("CUDA", "GPU", t_gpu, 170.79, 1.00);
  row("CUDA", "Emul. on CPU", t_emul_cpu, 9141.51, 53.52);
  row("CUDA", "Emul. on VP", t_emul_vp, 374534.34, 2192.95);
  row("CUDA", "This work (SigmaVP)", t_sigma, 568.12, 3.32);
  row("C", "CPU", t_c_cpu, 8213.09, 48.09);
  row("C", "VP", t_c_vp, 269874.03, 1580.15);
  t.print(std::cout);

  std::cout << "\nShape checks: GPU < SigmaVP << Emul-CPU < Emul-VP; "
            << "SigmaVP/GPU = " << fmt_ratio(t_sigma / t_gpu)
            << "x (paper 3.32x); Emul-VP/SigmaVP = " << fmt_ratio(t_emul_vp / t_sigma)
            << "x (paper 659x)\n";
  return 0;
}
