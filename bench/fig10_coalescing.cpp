// Reproduces Fig. 10 of the paper: Kernel Coalescing.
//  (a) execution time and speedup of vectorAdd as a function of the number
//      of programs the (constant) total input is split over;
//  (b) execution time of one kernel as the grid size grows 1..64 with 512
//      threads per block: a staircase quantized by the device's wave size
//      (Eq. 9: T = To + Te * ceil(input / alignment_unit)).

#include <algorithm>
#include <iostream>

#include "sched/dispatcher.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

constexpr std::uint64_t kTotalElems = 64 * 512;  // the paper's 64-block grid

/// Splits `kTotalElems` of vectorAdd over `n_programs` jobs and measures the
/// completion of all of them, with or without Kernel Coalescing.
SimTime run_split(std::size_t n_programs, bool coalesce) {
  const workloads::Workload w = workloads::make_vector_add();
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), 1ull << 30, "gpu");
  DispatchConfig cfg;
  cfg.interleave = true;
  cfg.coalesce = coalesce;
  cfg.coalesce_window_us = 5.0;
  cfg.coalesce_eager_peers = static_cast<std::uint32_t>(n_programs > 0 ? n_programs - 1 : 0);
  Dispatcher disp(q, dev, cfg);

  const std::uint64_t per_prog = kTotalElems / n_programs;
  SimTime makespan = 0.0;
  for (std::size_t p = 0; p < n_programs; ++p) disp.register_vp();
  for (std::size_t p = 0; p < n_programs; ++p) {
    std::vector<std::uint64_t> addrs;
    for (const auto& spec : w.buffers(per_prog)) addrs.push_back(dev.malloc(spec.bytes));
    Job j;
    j.vp_id = static_cast<std::uint32_t>(p);
    j.seq_in_vp = 0;
    j.kind = JobKind::kKernel;
    j.launch.request.kernel = &w.kernel;
    j.launch.request.dims = w.dims(per_prog);
    j.launch.request.args = w.args(addrs, per_prog);
    j.launch.request.mode = ExecMode::kAnalytic;
    j.launch.request.analytic_profile = w.profile(per_prog);
    j.launch.request.mem_behavior = w.behavior(per_prog);
    j.launch.coalesce = w.coalesce(per_prog);
    j.on_complete = [&makespan](SimTime end, const KernelExecStats*) {
      makespan = std::max(makespan, end);
    };
    disp.submit(std::move(j));
  }
  q.run();
  return makespan;
}

}  // namespace
}  // namespace sigvp

int main() {
  using namespace sigvp;

  std::cout << "== Fig. 10(a): Kernel Coalescing — constant total work split "
            << "over N programs (vectorAdd, " << kTotalElems << " elements) ==\n\n";
  TablePrinter a({"Programs", "Separate (us)", "Coalesced (us)", "Speedup",
                  "Paper speedup"});
  struct PaperPoint {
    std::size_t n;
    const char* speedup;
  };
  const PaperPoint paper[] = {{1, "1.00"}, {2, "-"},     {4, "-"},  {8, "-"},
                              {16, "10.54"}, {32, "-"}, {64, "20.48"}};
  for (const auto& pp : paper) {
    const SimTime separate = run_split(pp.n, false);
    const SimTime coalesced = run_split(pp.n, true);
    a.add_row({fmt_int(static_cast<long long>(pp.n)), fmt_fixed(separate, 1),
               fmt_fixed(coalesced, 1), fmt_ratio(separate / coalesced), pp.speedup});
  }
  a.print(std::cout);
  std::cout << "\n(Speedup grows with the number of coalesced programs: launch\n"
            << " overheads amortize and the merged grid aligns to full waves.)\n";

  std::cout << "\n== Fig. 10(b): execution time vs grid size (block = 512 threads) ==\n\n";
  const workloads::Workload w = workloads::make_vector_add();
  TablePrinter b({"Grid", "Data units", "Time (us)", "Waves ceil(grid/8)"});
  // Eq. 9 check data: time quantizes by full waves of the 8-SM device.
  for (std::uint32_t grid = 1; grid <= 64; ++grid) {
    const std::uint64_t n = static_cast<std::uint64_t>(grid) * 512;
    DynamicProfile p = w.profile(n);
    LaunchDims dims;
    dims.block_x = 512;
    dims.grid_x = grid;
    const KernelExecStats s =
        evaluate_analytic(make_quadro4000(), w.kernel, dims, p, w.behavior(n));
    if (grid <= 4 || grid % 4 == 0 || grid == 9 || grid == 16 || grid == 17) {
      b.add_row({fmt_int(grid), fmt_int(static_cast<long long>(n)),
                 fmt_fixed(s.duration_us, 2), fmt_int((grid + 7) / 8)});
    }
  }
  b.print(std::cout);
  std::cout << "\n(Grids 9 and 16 take the same time — both need 2 waves on the\n"
            << " 8-SM device — reproducing the paper's staircase observation.)\n";
  return 0;
}
