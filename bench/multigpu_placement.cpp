// Multi-GPU placement bench (DESIGN.md §17): a skewed 16-VP dispatch-bound
// fleet run against host GPU sets of 1 / 2 / 4 / 8 devices (plus a 2+2
// heterogeneous mix), reporting the sim-domain makespan speedup of each set
// over the single-device host, the affinity-vs-round-robin placement win,
// and the migration counters of a runtime-skewed fleet.
//
// Everything gated here lives in the sim domain, so the gates are hard:
//
//   * monotone non-degradation — makespan must not increase as devices are
//     added along {1, 2, 4, 8}.
//   * dispatch-bound speedup — the 4-device set must complete the skewed
//     fleet >= 1.5x faster (sim makespan) than the single device.
//   * placement win — affinity (LPT + runtime migration) must beat
//     round-robin on the skewed fleet at 4 devices, where round-robin
//     stacks every heavy VP onto device 0.
//   * placement determinism — the 4-device job's full BENCH JSON must be
//     byte-identical at --workers {1, 4}, and the sharded variant
//     (2 domains x 2 devices) byte-identical at --shards {1, 2}.
//
//   multigpu_placement [--reps R] [--json PATH]
//
// scripts/bench_regression_check.py --multigpu compares every sim-domain
// field (makespans, speedups, job/migration counters) exactly and bands
// only the wall-clock jobs/s throughput (25%).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "run/json_writer.hpp"
#include "run/sweep.hpp"
#include "run/thread_pool.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

ScenarioConfig multigpu_config(const std::vector<GpuArch>& archs) {
  ScenarioConfig cfg;
  cfg.backend = Backend::kSigmaVp;
  cfg.mode = ExecMode::kAnalytic;
  cfg.gpu_mem_bytes = 32ull * 1024 * 1024;
  cfg.dispatch.interleave = true;
  cfg.async_launches = true;
  for (const GpuArch& arch : archs) {
    HostGpuSpec spec;
    spec.arch = arch;
    spec.mem_bytes = cfg.gpu_mem_bytes;
    cfg.host_gpus.push_back(spec);
  }
  return cfg;
}

/// The skewed fleet: every 4th VP is heavy, so at 4 devices round-robin
/// stacks all four heavy VPs onto device 0 while LPT placement spreads them.
std::vector<AppInstance> skewed_fleet(const workloads::Workload& w) {
  std::vector<AppInstance> apps;
  for (int i = 0; i < 16; ++i) {
    workloads::AppTraits t = w.traits;
    t.iterations = (i % 4 == 0) ? 12 : 3;
    apps.push_back(AppInstance{&w, w.test_n, t});
    apps.back().jitter = static_cast<std::uint64_t>(i);
  }
  return apps;
}

ScenarioResult timed_run(const ScenarioConfig& cfg, const std::vector<AppInstance>& apps,
                         std::size_t reps, double& best_ms) {
  ScenarioResult result;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    ScenarioResult got = run_scenario(cfg, apps);
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    if (r == 0) {
      result = std::move(got);
      best_ms = ms;
    } else if (ms < best_ms) {
      best_ms = ms;
    }
  }
  return result;
}

/// Full sim-domain JSON of one result — the byte-identity probe. Host-only
/// fields (workers, wall_ms) are pinned so only simulation bytes remain.
std::string result_json(const ScenarioResult& r) {
  run::SweepResult one;
  one.jobs.push_back(run::SweepJobResult{"probe", "multigpu", r});
  one.workers = 1;
  one.wall_ms = 0.0;
  return run::sweep_to_json(one, "multigpu_placement_probe");
}

struct Point {
  std::string label;
  std::size_t devices = 0;
  double makespan_us = 0.0;
  double speedup_vs_1 = 0.0;
  std::uint64_t jobs = 0;
  std::uint64_t migrations = 0;
  std::uint64_t migrated_bytes = 0;
  double wall_ms = 0.0;
  double jobs_per_sec = 0.0;
};

}  // namespace
}  // namespace sigvp

int main(int argc, char** argv) {
  using namespace sigvp;

  std::size_t reps = 1;
  std::string json_path = "BENCH_multigpu_placement.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      reps = std::max<std::size_t>(1, std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");
  const auto apps = skewed_fleet(w);
  bool failed = false;

  std::cout << "== multigpu_placement: skewed 16-VP fleet across host GPU sets ==\n\n";

  // --- device ladder ----------------------------------------------------------
  struct Config {
    std::string label;
    std::vector<GpuArch> archs;
  };
  std::vector<Config> ladder;
  for (const std::size_t d : {1u, 2u, 4u, 8u}) {
    ladder.push_back({"quadro4000 x" + std::to_string(d),
                      std::vector<GpuArch>(d, make_quadro4000())});
  }
  ladder.push_back({"quadro4000 x2 + gridk520 x2",
                    {make_quadro4000(), make_quadro4000(), make_gridk520(),
                     make_gridk520()}});

  std::vector<Point> points;
  TablePrinter table({"Host GPUs", "Devices", "Makespan us", "Speedup", "Migr",
                      "Wall ms", "Jobs/s"});
  for (const Config& c : ladder) {
    Point p;
    p.label = c.label;
    p.devices = c.archs.size();
    const ScenarioResult r = timed_run(multigpu_config(c.archs), apps, reps, p.wall_ms);
    p.makespan_us = r.makespan_us;
    p.jobs = r.jobs_dispatched;
    p.migrations = r.gpus.migrations;
    p.migrated_bytes = r.gpus.migrated_bytes;
    p.speedup_vs_1 = points.empty() ? 1.0 : points.front().makespan_us / p.makespan_us;
    p.jobs_per_sec =
        p.wall_ms > 0.0 ? static_cast<double>(p.jobs) / (p.wall_ms / 1e3) : 0.0;
    table.add_row({p.label, fmt_int(static_cast<long long>(p.devices)),
                   fmt_fixed(p.makespan_us, 1), fmt_ratio(p.speedup_vs_1) + "x",
                   fmt_int(static_cast<long long>(p.migrations)), fmt_fixed(p.wall_ms, 1),
                   fmt_fixed(p.jobs_per_sec, 0)});
    points.push_back(p);
  }
  table.print(std::cout);

  // Monotone non-degradation along the homogeneous ladder (points 0..3).
  for (std::size_t i = 1; i < 4; ++i) {
    if (points[i].makespan_us > points[i - 1].makespan_us) {
      std::cerr << "MULTIGPU REGRESSION: makespan grew from " << points[i - 1].label
                << " to " << points[i].label << " (" << points[i - 1].makespan_us
                << " -> " << points[i].makespan_us << " us)\n";
      failed = true;
    }
  }
  // Dispatch-bound speedup target at 4 devices (sim-domain, deterministic).
  if (points[2].speedup_vs_1 < 1.5) {
    std::cerr << "MULTIGPU REGRESSION: 4-device speedup " << points[2].speedup_vs_1
              << "x < 1.5x target on the skewed fleet\n";
    failed = true;
  }

  // --- placement win: affinity vs round-robin at 4 devices --------------------
  ScenarioConfig rr_cfg = multigpu_config(std::vector<GpuArch>(4, make_quadro4000()));
  rr_cfg.placement.policy = PlacementPolicy::kRoundRobin;
  double rr_ms = 0.0;
  const ScenarioResult rr = timed_run(rr_cfg, apps, reps, rr_ms);
  const double affinity_makespan = points[2].makespan_us;
  const double win = affinity_makespan > 0.0 ? rr.makespan_us / affinity_makespan : 0.0;
  std::cout << "\nplacement at 4 devices: round-robin " << fmt_fixed(rr.makespan_us, 1)
            << " us vs affinity " << fmt_fixed(affinity_makespan, 1) << " us ("
            << fmt_ratio(win) << "x win)\n";
  if (rr.makespan_us <= affinity_makespan) {
    std::cerr << "MULTIGPU REGRESSION: affinity placement lost to round-robin on the "
                 "skewed fleet\n";
    failed = true;
  }

  // --- runtime migration: equal initial weights, skewed runtime load ----------
  // Equal per-VP weights make the initial placement round-robin-like, but VPs
  // 0 and 4 (both on device 0 of 4) are heavy at runtime; once the light VPs
  // drain, the re-scheduler must migrate work off the backlogged device.
  std::vector<AppInstance> mig_apps;
  for (int i = 0; i < 8; ++i) {
    workloads::AppTraits t = w.traits;
    t.iterations = (i == 0 || i == 4) ? 16 : 2;
    mig_apps.push_back(AppInstance{&w, w.test_n, t});
  }
  ScenarioConfig mig_cfg = multigpu_config(std::vector<GpuArch>(4, make_quadro4000()));
  mig_cfg.async_launches = false;  // synchronous: VPs go idle between jobs
  double mig_ms = 0.0;
  const ScenarioResult mig = timed_run(mig_cfg, mig_apps, reps, mig_ms);
  std::cout << "runtime migration: " << mig.gpus.migrations << " migrations, "
            << mig.gpus.migrated_bytes << " bytes restaged\n";
  if (mig.gpus.migrations == 0) {
    std::cerr << "MULTIGPU REGRESSION: runtime-skewed fleet triggered no migrations\n";
    failed = true;
  }

  // --- placement determinism: workers x shards byte-identity ------------------
  run::SweepJob quad;
  quad.name = "quad";
  quad.group = "multigpu";
  quad.config = multigpu_config(std::vector<GpuArch>(4, make_quadro4000()));
  quad.apps = apps;
  run::SweepJob sharded;
  sharded.name = "sharded";
  sharded.group = "multigpu";
  sharded.config = multigpu_config(std::vector<GpuArch>(2, make_quadro4000()));
  sharded.config.fleet.domains = 2;
  sharded.apps = apps;
  const std::vector<run::SweepJob> jobs{quad, sharded};

  auto canonical = [](run::SweepResult r) {
    r.wall_ms = 0.0;
    r.workers = 1;
    return run::sweep_to_json(r, "multigpu_placement");
  };
  run::set_fleet_shards(1);
  const std::string golden = canonical(run::SweepRunner(1).run(jobs));
  bool determinism = true;
  for (const std::size_t shards : {1u, 2u}) {
    for (const std::size_t workers : {1u, 4u}) {
      run::set_fleet_shards(shards);
      if (canonical(run::SweepRunner(workers).run(jobs)) != golden) {
        std::cerr << "PLACEMENT DIVERGENCE: simulation bytes changed at shards="
                  << shards << " workers=" << workers << "\n";
        determinism = false;
        failed = true;
      }
    }
  }
  run::set_fleet_shards(1);
  std::cout << "placement determinism: "
            << (determinism ? "byte-identical at workers {1, 4} x shards {1, 2}"
                            : "FAILED")
            << "\n";

  // --- JSON -------------------------------------------------------------------
  using run::json::number;
  std::ostringstream os;
  os << "{\n  \"bench\": \"multigpu_placement\",\n";
  os << "  \"placement_determinism\": " << (determinism ? "true" : "false") << ",\n";
  os << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    os << "    {\"label\": \"" << p.label << "\", \"devices\": " << p.devices
       << ", \"makespan_us\": " << number(p.makespan_us)
       << ", \"speedup_vs_1\": " << number(p.speedup_vs_1) << ", \"jobs\": " << p.jobs
       << ", \"migrations\": " << p.migrations
       << ", \"migrated_bytes\": " << p.migrated_bytes
       << ", \"wall_ms\": " << number(p.wall_ms)
       << ", \"jobs_per_sec\": " << number(p.jobs_per_sec) << "}"
       << (i + 1 != points.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"placement\": {\"devices\": 4, \"rr_makespan_us\": " << number(rr.makespan_us)
     << ", \"affinity_makespan_us\": " << number(affinity_makespan)
     << ", \"win\": " << number(win) << "},\n";
  os << "  \"migration\": {\"migrations\": " << mig.gpus.migrations
     << ", \"migrated_bytes\": " << mig.gpus.migrated_bytes
     << ", \"makespan_us\": " << number(mig.makespan_us) << "}\n";
  os << "}\n";

  if (!run::try_write_json_file(os.str(), json_path)) {
    std::cerr << "error: failed writing JSON results file: " << json_path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << json_path << "\n";

  if (failed) {
    std::cerr << "\nmultigpu_placement: contract checks FAILED\n";
    return 1;
  }
  return 0;
}
