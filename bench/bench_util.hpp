#pragma once

// Shared helpers for the estimation-shaped benches (ablation_estimation,
// fig12_timing, fig13_power): one definition of "functionally evaluate a
// suite workload on an architecture" so the three tables are guaranteed to
// price identical executions.

#include <vector>

#include "gpu/offline.hpp"
#include "mem/allocator.hpp"
#include "workloads/suite.hpp"

namespace sigvp::bench {

/// Allocates the workload's buffers in a fresh 512 MB address space, fills
/// every input buffer with the suite's canonical 0.75f pattern, and prices
/// one functional execution of the kernel at size `n` on `arch`.
///
/// Deliberately calls the plain evaluate_functional (not the launch cache):
/// these benches measure interpretation + estimation cost itself, and their
/// numbers must not depend on what some earlier bench left in a
/// process-wide cache.
inline LaunchEvaluation evaluate_workload_on(const workloads::Workload& w, std::uint64_t n,
                                             const GpuArch& arch) {
  AddressSpace mem(512ull * 1024 * 1024, "m");
  FreeListAllocator alloc(4096, mem.size() - 4096);
  std::vector<std::uint64_t> addrs;
  const auto bufs = w.buffers(n);
  for (const auto& b : bufs) addrs.push_back(*alloc.allocate(b.bytes));
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    if (!bufs[i].is_input) continue;
    for (std::uint64_t off = 0; off + 4 <= bufs[i].bytes; off += 4) {
      mem.write<float>(addrs[i] + off, 0.75f);
    }
  }
  return evaluate_functional(arch, w.kernel, w.dims(n), w.args(addrs, n), mem);
}

}  // namespace sigvp::bench
