// Kill–resume soak harness over the app-shaped workload suite (DESIGN.md §14):
// proves that a fleet simulation killed mid-flight — mid-dispatch, mid-merged
// coalesced group, even mid-checkpoint-write — and resumed from its rotating
// checkpoints produces BENCH JSON byte-identical to a never-interrupted run,
// with no request lost or duplicated, at any worker count.
//
// The binary supervises itself: the parent re-execs `soak_recovery --child`
// (the app-suite sweep with checkpointing from the environment) under a
// schedule of SIGVP_CRASH sites, expecting kCrashExitCode (86) from each
// injected death, then truncates the newest checkpoint to prove the checksum
// rejects torn files and the scan falls back to an older one.
//
//   soak_recovery [--keep]         keep the work directory on success
//                 [--seeds N]      add N randomized seeded kill-resume batteries

#include <sys/wait.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "app_suite_jobs.hpp"
#include "fault/crash.hpp"
#include "run/json_writer.hpp"
#include "run/sweep.hpp"
#include "workloads/suite.hpp"

namespace fs = std::filesystem;

namespace sigvp {
namespace {

// ---------------------------------------------------------------------------
// Child: one app-suite sweep, checkpointing per the environment.
// ---------------------------------------------------------------------------

int run_child(int argc, char** argv) {
  const run::SweepCli cli = run::parse_sweep_cli(argc, argv, "BENCH_app_suite.json");
  const auto suite = workloads::make_app_suite();
  const std::vector<run::SweepJob> jobs = appsuite::build_app_suite_jobs(suite);
  const run::SweepRunner runner(cli.workers);
  run::SweepResumeInfo resume;
  const run::SweepResult sweep = runner.run(jobs, cli.snapshot_options(), &resume);
  // Machine-readable line the parent greps to assert resume/fallback behavior.
  std::cout << "SOAK_CHILD resumed_from=" << resume.resumed_from
            << " resumed=" << resume.jobs_resumed << " replayed=" << resume.jobs_replayed
            << " rejected=" << resume.rejected.size() << "\n";
  if (!run::try_write_sweep_json(sweep, "app_suite", cli.json_path)) return 1;
  return 0;
}

// ---------------------------------------------------------------------------
// Fleet child: sharded multi-domain scenarios (DESIGN.md §16) under the same
// checkpoint/crash machinery. SIGVP_SHARDS (read by parse_sweep_cli) decides
// how many host threads advance the domains — crash sites then fire from
// shard threads, and the resumed output must still match a serial golden run.
// ---------------------------------------------------------------------------

std::vector<run::SweepJob> build_fleet_soak_jobs() {
  static const auto suite = workloads::make_suite();
  const workloads::Workload& va = workloads::find(suite, "vectorAdd");
  const workloads::Workload& bs = workloads::find(suite, "BlackScholes");

  std::vector<run::SweepJob> jobs;
  run::SweepJob flat;
  flat.name = "fleet-flat";
  flat.group = "fleet";
  flat.config.backend = Backend::kSigmaVp;
  flat.config.mode = ExecMode::kAnalytic;
  flat.config.gpu_mem_bytes = 16ull * 1024 * 1024;
  flat.config.fleet.domains = 4;
  flat.config.fault.seed = 7;
  flat.config.fault.drop_rate = 0.04;
  flat.config.fault.dup_rate = 0.02;
  flat.config.fault.stall_vp = 5;  // lands in a non-root domain's slice
  {
    workloads::AppTraits t = va.traits;
    t.iterations = 3;
    for (std::size_t i = 0; i < 12; ++i) {
      flat.apps.push_back(AppInstance{&va, va.test_n, t});
      flat.apps.back().jitter = i;
    }
  }
  jobs.push_back(std::move(flat));

  run::SweepJob tree;
  tree.name = "fleet-tree";
  tree.group = "fleet";
  tree.config.backend = Backend::kSigmaVp;
  tree.config.mode = ExecMode::kAnalytic;
  tree.config.gpu_mem_bytes = 16ull * 1024 * 1024;
  tree.config.fleet.domains = 3;
  tree.config.fleet.topology = "(1,(2):25)";
  {
    workloads::AppTraits t = bs.traits;
    t.iterations = 2;
    for (std::size_t i = 0; i < 9; ++i) tree.apps.push_back(AppInstance{&bs, bs.test_n, t});
  }
  jobs.push_back(std::move(tree));
  return jobs;
}

int run_child_fleet(int argc, char** argv) {
  const run::SweepCli cli = run::parse_sweep_cli(argc, argv, "BENCH_fleet_soak.json");
  const std::vector<run::SweepJob> jobs = build_fleet_soak_jobs();
  const run::SweepRunner runner(cli.workers);
  run::SweepResumeInfo resume;
  const run::SweepResult sweep = runner.run(jobs, cli.snapshot_options(), &resume);
  std::cout << "SOAK_CHILD resumed_from=" << resume.resumed_from
            << " resumed=" << resume.jobs_resumed << " replayed=" << resume.jobs_replayed
            << " rejected=" << resume.rejected.size() << "\n";
  if (!run::try_write_sweep_json(sweep, "fleet_soak", cli.json_path)) return 1;
  return 0;
}

// ---------------------------------------------------------------------------
// Parent-side helpers.
// ---------------------------------------------------------------------------

bool g_ok = true;

bool check(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "FAIL: " << what << "\n";
    g_ok = false;
  }
  return ok;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Blanks the one host-wall-clock field of the BENCH JSON; everything else is
/// sim-domain and must match byte for byte.
std::string normalize_wall_ms(std::string json) {
  const std::string key = "\"wall_ms\": ";
  const std::size_t at = json.find(key);
  if (at == std::string::npos) return json;
  const std::size_t begin = at + key.size();
  const std::size_t end = json.find(',', begin);
  if (end == std::string::npos) return json;
  return json.replace(begin, end - begin, "X");
}

/// Sum of every per-job `"requests": N` field — total requests the sweep
/// claims to have served.
std::uint64_t sum_requests(const std::string& json) {
  const std::string key = "\"requests\": ";
  std::uint64_t total = 0;
  for (std::size_t at = json.find(key); at != std::string::npos;
       at = json.find(key, at + key.size())) {
    total += std::strtoull(json.c_str() + at + key.size(), nullptr, 10);
  }
  return total;
}

struct ChildRun {
  int exit_code = -1;
  std::string log;
};

/// Which child sweep a supervised run executes, and how many shard threads
/// advance sharded fleets inside it (exported as SIGVP_SHARDS).
struct ChildMode {
  const char* flag = "--child";
  std::size_t shards = 1;
};

/// One supervised child run: `crash_spec` arms SIGVP_CRASH (empty = disarmed),
/// `snapshot_dir` arms checkpointing + auto-resume (empty = plain run).
ChildRun spawn_child(const std::string& exe, const ChildMode& mode, std::size_t workers,
                     const std::string& crash_spec, const fs::path& snapshot_dir,
                     const fs::path& json_path, const fs::path& log_path,
                     const std::string& crash_rate = "", const std::string& crash_seed = "") {
  std::ostringstream cmd;
  cmd << "SIGVP_CRASH='" << crash_spec << "'"
      << " SIGVP_CRASH_RATE='" << crash_rate << "' SIGVP_CRASH_SEED='" << crash_seed << "'"
      << " SIGVP_SNAPSHOT_DIR='" << snapshot_dir.string() << "'"
      << " SIGVP_SHARDS='" << mode.shards << "'"
      << " SIGVP_TRACE='' SIGVP_METRICS=''"
      << " '" << exe << "' " << mode.flag << " --workers " << workers << " --json '"
      << json_path.string() << "' >'" << log_path.string() << "' 2>&1";
  const int raw = std::system(cmd.str().c_str());
  ChildRun r;
  r.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  r.log = read_file(log_path);
  return r;
}

fs::path newest_checkpoint(const fs::path& dir) {
  fs::path best;
  std::uint64_t best_seq = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("checkpoint_", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".svps") == 0) {
      const std::uint64_t seq = std::strtoull(name.c_str() + 11, nullptr, 10);
      if (best.empty() || seq > best_seq) {
        best = e.path();
        best_seq = seq;
      }
    }
  }
  return best;
}

/// Tears the newest published checkpoint in half — the file keeps its header
/// but the payload no longer matches the recorded checksum.
void truncate_newest_checkpoint(const fs::path& dir) {
  const fs::path victim = newest_checkpoint(dir);
  check(!victim.empty(), "soak: no checkpoint found to truncate");
  if (victim.empty()) return;
  const auto size = fs::file_size(victim);
  fs::resize_file(victim, size / 2);
  std::cout << "[soak] tore " << victim.filename().string() << " (" << size << " -> "
            << size / 2 << " bytes)\n";
}

/// Kill–resume loop at one worker count: crash the child at each scheduled
/// site (in order), optionally tearing a checkpoint along the way, then let
/// an unarmed run finish. Returns the number of injected crashes observed.
std::size_t soak_loop(const std::string& exe, const ChildMode& mode, std::size_t workers,
                      const std::vector<std::string>& schedule, int tear_after_crash,
                      const fs::path& snapshot_dir, const fs::path& json_path,
                      const fs::path& workdir) {
  fs::create_directories(snapshot_dir);
  std::size_t crashes = 0;
  bool torn = false;
  const std::size_t max_cycles = schedule.size() + 8;
  for (std::size_t cycle = 0; cycle < max_cycles; ++cycle) {
    const std::string spec = cycle < schedule.size() ? schedule[cycle] : "";
    const fs::path log = workdir / ("child" +
                                    std::string(std::string(mode.flag) == "--child" ? "" : "f") +
                                    "_w" + std::to_string(workers) + "_s" +
                                    std::to_string(mode.shards) + "_c" +
                                    std::to_string(cycle) + ".log");
    const ChildRun r = spawn_child(exe, mode, workers, spec, snapshot_dir, json_path, log);
    std::cout << "[soak] workers=" << workers << " cycle=" << cycle << " crash='" << spec
              << "' exit=" << r.exit_code << "\n";
    if (cycle > 0) {
      // A checkpoint exists from the previous cycle; the child must resume.
      check(r.log.find("SOAK_CHILD resumed_from=" + snapshot_dir.string()) !=
                std::string::npos ||
                r.exit_code == kCrashExitCode,
            "cycle " + std::to_string(cycle) + " did not resume from a checkpoint");
    }
    if (torn) {
      // First run after the tear must have rejected the torn file by checksum
      // and fallen back to an older checkpoint. The store's warning reads
      // "rejected <abs path>" (std::cerr, so it survives even a crashed
      // child) — distinct from the SOAK_CHILD line's "rejected=" counter.
      check(r.log.find("rejected /") != std::string::npos,
            "torn checkpoint was not rejected on resume");
      torn = false;
    }
    if (r.exit_code == kCrashExitCode) {
      ++crashes;
      check(r.log.find("[crash] injected process crash") != std::string::npos,
            "crashed child did not log the injected site");
      if (static_cast<int>(crashes) == tear_after_crash) {
        truncate_newest_checkpoint(snapshot_dir);
        torn = true;
      }
      continue;
    }
    if (r.exit_code == 0) return crashes;
    check(false, "child failed with unexpected exit code " + std::to_string(r.exit_code) +
                     " (cycle " + std::to_string(cycle) + ", crash='" + spec + "')");
    return crashes;
  }
  check(false, "soak never completed within the cycle budget");
  return crashes;
}

/// Randomized kill–resume battery: probabilistic deaths at every
/// instrumented crash site (SIGVP_CRASH_RATE / SIGVP_CRASH_SEED), with a
/// fresh seed per cycle so a resumed run rolls a different schedule. The
/// final cycle runs disarmed, guaranteeing completion within the budget.
std::size_t random_soak(const std::string& exe, const ChildMode& mode, std::size_t workers,
                        std::uint64_t seed, double rate, const fs::path& snapshot_dir,
                        const fs::path& json_path, const fs::path& workdir) {
  fs::create_directories(snapshot_dir);
  std::size_t crashes = 0;
  const std::size_t max_cycles = 24;
  for (std::size_t cycle = 0; cycle < max_cycles; ++cycle) {
    const bool armed = cycle + 1 < max_cycles;
    const fs::path log =
        workdir / ("rand_s" + std::to_string(seed) + "_c" + std::to_string(cycle) + ".log");
    const ChildRun r =
        spawn_child(exe, mode, workers, "", snapshot_dir, json_path, log,
                    armed ? std::to_string(rate) : "",
                    armed ? std::to_string(seed * 1000 + cycle) : "");
    std::cout << "[soak] seed=" << seed << " cycle=" << cycle << " exit=" << r.exit_code
              << "\n";
    if (r.exit_code == kCrashExitCode) {
      ++crashes;
      continue;
    }
    if (r.exit_code == 0) return crashes;
    check(false, "random soak (seed " + std::to_string(seed) +
                     ") child failed with unexpected exit code " +
                     std::to_string(r.exit_code));
    return crashes;
  }
  check(false, "random soak never completed within the cycle budget");
  return crashes;
}

}  // namespace
}  // namespace sigvp

int main(int argc, char** argv) {
  using namespace sigvp;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--child") return run_child(argc, argv);
    if (std::string(argv[i]) == "--child-fleet") return run_child_fleet(argc, argv);
  }
  bool keep = false;
  std::uint64_t seeds = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--keep") keep = true;
    if (std::string(argv[i]) == "--seeds" && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    }
  }

  const std::string exe = fs::absolute(argv[0]).string();
  const fs::path workdir = fs::absolute("soak_recovery_work");
  fs::remove_all(workdir);
  fs::create_directories(workdir);

  // Expected total requests, computed from the same job construction the
  // children use — the lost/duplicated-request oracle.
  std::uint64_t expected_requests = 0;
  {
    const auto suite = workloads::make_app_suite();
    for (const run::SweepJob& j : appsuite::build_app_suite_jobs(suite)) {
      for (const AppInstance& a : j.apps) expected_requests += a.arrivals.size();
    }
  }

  std::cout << "== Soak recovery: kill-resume over the app suite ==\n"
            << "   (expecting " << expected_requests << " requests end to end)\n\n";

  // -- Golden: uninterrupted runs at workers 1 and 8 -------------------------
  const fs::path golden1 = workdir / "golden_w1.json";
  const fs::path golden8 = workdir / "golden_w8.json";
  const ChildMode app_mode;  // --child, shards=1 (app-suite jobs are unsharded)
  {
    const ChildRun g1 = spawn_child(exe, app_mode, 1, "", "", golden1, workdir / "golden_w1.log");
    const ChildRun g8 = spawn_child(exe, app_mode, 8, "", "", golden8, workdir / "golden_w8.log");
    check(g1.exit_code == 0, "golden run (workers 1) failed");
    check(g8.exit_code == 0, "golden run (workers 8) failed");
  }
  const std::string gold1 = normalize_wall_ms(read_file(golden1));
  std::string gold8 = read_file(golden8);
  check(sum_requests(gold1) == expected_requests, "golden (workers 1) lost requests");
  check(sum_requests(gold8) == expected_requests, "golden (workers 8) lost requests");
  // Worker-count determinism: only `workers` and wall_ms may differ.
  {
    const std::size_t at = gold8.find("\"workers\": 8");
    check(at != std::string::npos, "golden (workers 8) JSON missing workers field");
    if (at != std::string::npos) gold8.replace(at, 12, "\"workers\": 1");
    check(normalize_wall_ms(gold8) == gold1,
          "golden runs at workers 1 and 8 are not byte-identical");
  }
  std::cout << "[soak] golden runs agree at workers 1 and 8\n\n";

  // -- Soak at workers 8: four scheduled deaths + torn-checkpoint fallback ---
  // dispatch:40 dies almost immediately; group:2 dies inside a merged
  // coalesced launch (cam/mixed jobs are still pending); snapshot:3 dies in
  // the torn-publish window of the third checkpoint write; dispatch:150 dies
  // deep into the replay. After crash #3 the newest checkpoint is truncated.
  const fs::path soak8_json = workdir / "soak_w8.json";
  const std::size_t crashes8 =
      soak_loop(exe, app_mode, 8, {"dispatch:40", "group:2", "snapshot:3", "dispatch:150"},
                /*tear_after_crash=*/3, workdir / "ckpt_w8", soak8_json, workdir);
  check(crashes8 >= 3, "soak (workers 8): expected at least 3 injected crashes, got " +
                           std::to_string(crashes8));
  {
    std::string soak = read_file(soak8_json);
    check(sum_requests(soak) == expected_requests,
          "soak (workers 8): requests lost or duplicated across crashes");
    const std::size_t at = soak.find("\"workers\": 8");
    if (at != std::string::npos) soak.replace(at, 12, "\"workers\": 1");
    check(normalize_wall_ms(soak) == gold1,
          "soak (workers 8): resumed output differs from uninterrupted golden");
  }
  std::cout << "\n[soak] workers=8: " << crashes8
            << " crashes, resumed output byte-identical to golden\n\n";

  // -- Mini soak at workers 1: serial resume path ----------------------------
  const fs::path soak1_json = workdir / "soak_w1.json";
  const std::size_t crashes1 = soak_loop(exe, app_mode, 1, {"dispatch:60"},
                                         /*tear_after_crash=*/0, workdir / "ckpt_w1",
                                         soak1_json, workdir);
  check(crashes1 >= 1, "soak (workers 1): scheduled crash never fired");
  check(normalize_wall_ms(read_file(soak1_json)) == gold1,
        "soak (workers 1): resumed output differs from uninterrupted golden");
  std::cout << "[soak] workers=1: " << crashes1
            << " crash, resumed output byte-identical to golden\n";

  // -- Sharded fleet soak (DESIGN.md §16) ------------------------------------
  // Golden: serial shard advancement at workers 1. Soak: 8 shard threads and
  // 2 sweep workers, killed mid-dispatch (the crash fires from a shard
  // thread) and mid-checkpoint-write, then resumed — every simulation byte
  // must match the serial golden run.
  std::cout << "\n== Sharded fleet: kill-resume with --shards 8 ==\n";
  const fs::path fleet_golden = workdir / "fleet_golden.json";
  {
    const ChildMode serial{"--child-fleet", 1};
    const ChildRun g = spawn_child(exe, serial, 1, "", "", fleet_golden,
                                   workdir / "fleet_golden.log");
    check(g.exit_code == 0, "fleet golden run failed");
  }
  const std::string fleet_gold = normalize_wall_ms(read_file(fleet_golden));

  const ChildMode sharded{"--child-fleet", 8};
  const fs::path fleet_json = workdir / "fleet_soak.json";
  const std::size_t fleet_crashes =
      soak_loop(exe, sharded, 2, {"dispatch:20", "snapshot:2"}, /*tear_after_crash=*/0,
                workdir / "ckpt_fleet", fleet_json, workdir);
  check(fleet_crashes >= 2, "fleet soak: expected 2 injected crashes, got " +
                                std::to_string(fleet_crashes));
  {
    std::string soak = read_file(fleet_json);
    const std::size_t at = soak.find("\"workers\": 2");
    if (at != std::string::npos) soak.replace(at, 12, "\"workers\": 1");
    check(normalize_wall_ms(soak) == fleet_gold,
          "fleet soak: sharded resumed output differs from serial golden");
  }
  std::cout << "[soak] fleet: " << fleet_crashes
            << " crashes at 8 shard threads, resumed output byte-identical to serial golden\n";

  // -- Randomized seeded batteries (nightly: --seeds N) ----------------------
  // Probabilistic deaths instead of scheduled sites: each seed rolls its own
  // crash schedule over every instrumented site, and the resumed output must
  // still match the uninterrupted golden byte for byte.
  std::size_t random_crashes = 0;
  if (seeds > 0) {
    std::cout << "\n== Randomized kill-resume: " << seeds << " seeded batteries ==\n";
    for (std::uint64_t s = 1; s <= seeds; ++s) {
      const fs::path json = workdir / ("rand_" + std::to_string(s) + ".json");
      const std::size_t c = random_soak(exe, app_mode, 8, s, /*rate=*/0.001,
                                        workdir / ("ckpt_rand" + std::to_string(s)), json,
                                        workdir);
      random_crashes += c;
      std::string out = read_file(json);
      check(sum_requests(out) == expected_requests,
            "random soak (seed " + std::to_string(s) +
                "): requests lost or duplicated across crashes");
      const std::size_t at = out.find("\"workers\": 8");
      if (at != std::string::npos) out.replace(at, 12, "\"workers\": 1");
      check(normalize_wall_ms(out) == gold1,
            "random soak (seed " + std::to_string(s) +
                "): resumed output differs from uninterrupted golden");
      std::cout << "[soak] seed " << s << ": " << c
                << " random crashes, output matches golden\n";
    }
  }

  if (!g_ok) {
    std::cerr << "\nSoak recovery FAILED; work directory kept at " << workdir << "\n";
    return 1;
  }
  std::cout << "\nAll soak-recovery contracts hold: no request lost or duplicated across "
            << crashes8 + crashes1 + fleet_crashes + random_crashes << " injected crashes.\n";
  if (!keep) fs::remove_all(workdir);
  return 0;
}
