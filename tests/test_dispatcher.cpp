#include <gtest/gtest.h>

#include <vector>

#include "ir/builder.hpp"
#include "sched/dispatcher.hpp"
#include "util/check.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

constexpr std::uint64_t kMem = 256ull * 1024 * 1024;

struct Rig {
  EventQueue q;
  GpuDevice dev;
  Dispatcher disp;

  explicit Rig(DispatchConfig cfg, std::size_t vps = 2)
      : dev(q, make_quadro4000(), kMem, "gpu"), disp(q, dev, zero_overhead(cfg)) {
    for (std::size_t i = 0; i < vps; ++i) disp.register_vp();
  }

  // These unit tests exercise engine scheduling and coalescing mechanics;
  // the host-side service time is covered by scenario tests and benches.
  static DispatchConfig zero_overhead(DispatchConfig cfg) {
    cfg.dispatch_overhead_us = 0.0;
    return cfg;
  }
};

Job copy_job(std::uint32_t vp, std::uint64_t seq, std::uint64_t addr, std::uint64_t bytes,
             std::vector<std::pair<std::uint64_t, SimTime>>* log, std::uint64_t id) {
  Job j;
  j.vp_id = vp;
  j.seq_in_vp = seq;
  j.kind = JobKind::kMemcpyH2D;
  j.device_addr = addr;
  j.bytes = bytes;
  j.on_complete = [log, id](SimTime end, const KernelExecStats*) {
    if (log) log->emplace_back(id, end);
  };
  return j;
}

KernelIR heavy_kernel() {
  // ~200k FP32 instructions per thread-block launch; enough to dwarf copies.
  KernelBuilder b("heavy", 0);
  const auto i = b.reg(), bound = b.reg(), step = b.reg(), acc = b.reg();
  b.block("entry");
  b.mov_imm_i(i, 0);
  b.mov_imm_i(bound, 1000);
  b.mov_imm_i(step, 1);
  b.mov_imm_f32(acc, 1.0f);
  auto loop = b.loop_begin(i, bound, step, "L");
  b.add_f32(acc, acc, acc);
  b.loop_end(loop);
  b.ret();
  return b.build();
}

Job kernel_job(const KernelIR& k, std::uint32_t vp, std::uint64_t seq,
               std::vector<std::pair<std::uint64_t, SimTime>>* log, std::uint64_t id) {
  Job j;
  j.vp_id = vp;
  j.seq_in_vp = seq;
  j.kind = JobKind::kKernel;
  j.launch.request.kernel = &k;
  j.launch.request.dims.block_x = 256;
  j.launch.request.dims.grid_x = 8;
  j.launch.request.mode = ExecMode::kAnalytic;
  // ~300M FP32 instructions → ~1.3 ms on the Quadro model, comparable to
  // the 8 MiB copies the interleaving tests overlap it with.
  j.launch.request.analytic_profile.instr_counts[InstrClass::kFp32] = 300'000'000;
  j.launch.request.mem_behavior = MemoryBehavior{1 << 16, 1000, 0.5, 0.9};
  j.on_complete = [log, id](SimTime end, const KernelExecStats*) {
    if (log) log->emplace_back(id, end);
  };
  return j;
}

TEST(DispatcherSerial, OneJobAtATimeInArrivalOrder) {
  Rig rig(DispatchConfig{false, false});
  std::vector<std::pair<std::uint64_t, SimTime>> log;
  const std::uint64_t buf = rig.dev.malloc(1 << 20);
  rig.disp.submit(copy_job(0, 0, buf, 1 << 20, &log, 1));
  rig.disp.submit(copy_job(1, 0, buf, 1 << 20, &log, 2));
  const KernelIR k = heavy_kernel();
  rig.disp.submit(kernel_job(k, 0, 1, &log, 3));
  rig.q.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].first, 1u);
  EXPECT_EQ(log[1].first, 2u);
  EXPECT_EQ(log[2].first, 3u);
  // Strict serialization: the kernel started only after copy 2 finished,
  // even though the compute engine was idle the whole time.
  EXPECT_GT(log[1].second, log[0].second);
  EXPECT_GT(log[2].second, log[1].second);
  EXPECT_EQ(rig.disp.jobs_dispatched(), 3u);
  EXPECT_TRUE(rig.disp.idle());
}

TEST(DispatcherInterleave, CopyAndKernelOverlapAcrossVps) {
  // VP0: long copy; VP1: kernel. With interleaving the kernel must not wait
  // for the copy; the makespan shrinks versus the serial baseline.
  const KernelIR k = heavy_kernel();

  auto run = [&](bool interleave) {
    Rig rig(DispatchConfig{interleave, false});
    std::vector<std::pair<std::uint64_t, SimTime>> log;
    const std::uint64_t buf = rig.dev.malloc(8 << 20);
    rig.disp.submit(copy_job(0, 0, buf, 8 << 20, &log, 1));
    rig.disp.submit(kernel_job(k, 1, 0, &log, 2));
    rig.q.run();
    SimTime makespan = 0;
    for (auto& [id, end] : log) makespan = std::max(makespan, end);
    return makespan;
  };

  const SimTime serial = run(false);
  const SimTime interleaved = run(true);
  EXPECT_LT(interleaved, serial * 0.75);
}

TEST(DispatcherInterleave, PreservesPerVpPartialOrder) {
  Rig rig(DispatchConfig{true, false});
  std::vector<std::pair<std::uint64_t, SimTime>> log;
  const std::uint64_t buf = rig.dev.malloc(1 << 20);
  const KernelIR k = heavy_kernel();
  // VP0 submits copy (seq 0) then kernel (seq 1): kernel may not run first
  // even though the compute engine is free.
  rig.disp.submit(copy_job(0, 0, buf, 1 << 20, &log, 1));
  rig.disp.submit(kernel_job(k, 0, 1, &log, 2));
  rig.q.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].first, 1u);
  EXPECT_LE(log[0].second, log[1].second);
}

TEST(DispatcherInterleave, OutOfOrderSeqWaitsForPredecessor) {
  Rig rig(DispatchConfig{true, false});
  std::vector<std::pair<std::uint64_t, SimTime>> log;
  const std::uint64_t buf = rig.dev.malloc(1 << 20);
  // seq 1 arrives before seq 0: it must be held.
  rig.disp.submit(copy_job(0, 1, buf, 1024, &log, 11));
  EXPECT_FALSE(rig.disp.idle());
  rig.q.run();
  EXPECT_TRUE(log.empty());
  rig.disp.submit(copy_job(0, 0, buf, 1024, &log, 10));
  rig.q.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].first, 10u);
  EXPECT_EQ(log[1].first, 11u);
  // Dispatching seq 0 from behind the held seq-1 job counts as a reorder.
  EXPECT_GT(rig.disp.reorders(), 0u);
}

TEST(DispatcherCoalesce, MergesIdenticalVectorAddsFunctionally) {
  using namespace workloads;
  const Workload w = make_vector_add();
  const std::uint64_t n = 700;  // deliberately unaligned

  Rig rig(DispatchConfig{true, true}, 3);
  // Per-VP buffers with distinct contents.
  struct VpBufs {
    std::uint64_t a, b, c;
  };
  std::vector<VpBufs> bufs;
  for (std::uint32_t vp = 0; vp < 3; ++vp) {
    VpBufs vb{rig.dev.malloc(4 * n), rig.dev.malloc(4 * n), rig.dev.malloc(4 * n)};
    for (std::uint64_t i = 0; i < n; ++i) {
      rig.dev.memory().write<float>(vb.a + 4 * i, static_cast<float>(i + vp));
      rig.dev.memory().write<float>(vb.b + 4 * i, 1000.0f * static_cast<float>(vp + 1));
    }
    bufs.push_back(vb);
  }

  // Park a dummy kernel on the compute engine first so all three vectorAdd
  // jobs are still queued when the coalescer scans (otherwise the first one
  // dispatches alone the moment it arrives — the engine is idle).
  const KernelIR blocker = heavy_kernel();
  rig.disp.submit(kernel_job(blocker, 0, 0, nullptr, 99));

  int completions = 0;
  for (std::uint32_t vp = 0; vp < 3; ++vp) {
    Job j;
    j.vp_id = vp;
    j.seq_in_vp = (vp == 0) ? 1 : 0;  // vp0 already spent seq 0 on the blocker
    j.kind = JobKind::kKernel;
    j.launch.request.kernel = &w.kernel;
    j.launch.request.dims = w.dims(n);
    j.launch.request.args = w.args({bufs[vp].a, bufs[vp].b, bufs[vp].c}, n);
    j.launch.request.mode = ExecMode::kFunctional;
    j.launch.coalesce = w.coalesce(n);
    j.on_complete = [&completions](SimTime, const KernelExecStats* stats) {
      ASSERT_NE(stats, nullptr);
      ++completions;
    };
    rig.disp.submit(std::move(j));
  }
  rig.q.run();

  EXPECT_EQ(completions, 3);
  EXPECT_EQ(rig.disp.coalesced_groups(), 1u);
  EXPECT_EQ(rig.disp.coalesced_jobs(), 3u);
  // Functional correctness: each VP got ITS OWN results back.
  for (std::uint32_t vp = 0; vp < 3; ++vp) {
    for (std::uint64_t i = 0; i < n; i += 97) {
      const float expect = static_cast<float>(i + vp) + 1000.0f * static_cast<float>(vp + 1);
      EXPECT_FLOAT_EQ(rig.dev.memory().read<float>(bufs[vp].c + 4 * i), expect)
          << "vp " << vp << " elem " << i;
    }
  }
}

TEST(DispatcherCoalesce, SingleEligibleJobRunsAlone) {
  using namespace workloads;
  const Workload w = make_vector_add();
  Rig rig(DispatchConfig{true, true}, 1);
  const std::uint64_t n = 256;
  const std::uint64_t a = rig.dev.malloc(4 * n), b = rig.dev.malloc(4 * n),
                      c = rig.dev.malloc(4 * n);
  Job j;
  j.vp_id = 0;
  j.seq_in_vp = 0;
  j.kind = JobKind::kKernel;
  j.launch.request.kernel = &w.kernel;
  j.launch.request.dims = w.dims(n);
  j.launch.request.args = w.args({a, b, c}, n);
  j.launch.request.mode = ExecMode::kFunctional;
  j.launch.coalesce = w.coalesce(n);
  bool done = false;
  j.on_complete = [&done](SimTime, const KernelExecStats*) { done = true; };
  rig.disp.submit(std::move(j));
  rig.q.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.disp.coalesced_groups(), 0u);
}

TEST(DispatcherCoalesce, DifferentKeysDoNotMerge) {
  using namespace workloads;
  const Workload add = make_vector_add();
  const Workload bs = make_black_scholes();
  Rig rig(DispatchConfig{false, true}, 2);
  const std::uint64_t n = 256;

  auto make_job = [&](const Workload& w, std::uint32_t vp) {
    std::vector<std::uint64_t> addrs;
    for (const auto& spec : w.buffers(n)) addrs.push_back(rig.dev.malloc(spec.bytes));
    Job j;
    j.vp_id = vp;
    j.seq_in_vp = 0;
    j.kind = JobKind::kKernel;
    j.launch.request.kernel = &w.kernel;
    j.launch.request.dims = w.dims(n);
    j.launch.request.args = w.args(addrs, n);
    j.launch.request.mode = ExecMode::kFunctional;
    j.launch.coalesce = w.coalesce(n);
    return j;
  };
  rig.disp.submit(make_job(add, 0));
  rig.disp.submit(make_job(bs, 1));
  rig.q.run();
  EXPECT_EQ(rig.disp.coalesced_groups(), 0u);
  EXPECT_EQ(rig.disp.jobs_dispatched(), 2u);
}

TEST(Coalescer, CanMergeRequiresUniformGroup) {
  using namespace workloads;
  const Workload w = make_vector_add();
  Job a;
  a.kind = JobKind::kKernel;
  a.launch.request.kernel = &w.kernel;
  a.launch.coalesce = w.coalesce(100);
  Job b = a;
  EXPECT_TRUE(Coalescer::can_merge({a, b}));
  EXPECT_FALSE(Coalescer::can_merge({a}));
  b.launch.coalesce.key = "other";
  EXPECT_FALSE(Coalescer::can_merge({a, b}));
  b = a;
  b.launch.request.mode = ExecMode::kAnalytic;
  EXPECT_FALSE(Coalescer::can_merge({a, b}));
}

TEST(Dispatcher, RejectsBadSubmissions) {
  Rig rig(DispatchConfig{});
  Job j;
  j.vp_id = 99;
  EXPECT_THROW(rig.disp.submit(std::move(j)), ContractError);
  Job k;
  k.vp_id = 0;
  k.kind = JobKind::kKernel;  // no kernel pointer
  EXPECT_THROW(rig.disp.submit(std::move(k)), ContractError);
}

}  // namespace
}  // namespace sigvp
