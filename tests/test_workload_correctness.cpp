#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "interp/interpreter.hpp"
#include "mem/allocator.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

using workloads::Workload;

/// Small fixture: device-like memory + allocator + interpreter.
class Funct : public ::testing::Test {
 protected:
  AddressSpace mem{512ull * 1024 * 1024, "m"};
  FreeListAllocator alloc{4096, 512ull * 1024 * 1024 - 4096};
  Interpreter interp;

  std::uint64_t dalloc(std::uint64_t bytes) {
    auto a = alloc.allocate(bytes);
    EXPECT_TRUE(a.has_value());
    return *a;
  }

  void run(const Workload& w, const std::vector<std::uint64_t>& addrs, std::uint64_t n) {
    interp.run(w.kernel, w.dims(n), w.args(addrs, n), mem);
  }
};

TEST_F(Funct, VectorAddAddsElementwise) {
  const Workload w = workloads::make_vector_add();
  const std::uint64_t n = 777;
  const std::uint64_t a = dalloc(4 * n), b = dalloc(4 * n), c = dalloc(4 * n);
  for (std::uint64_t i = 0; i < n; ++i) {
    mem.write<float>(a + 4 * i, static_cast<float>(i) * 0.25f);
    mem.write<float>(b + 4 * i, 100.0f - static_cast<float>(i));
  }
  run(w, {a, b, c}, n);
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(mem.read<float>(c + 4 * i),
                    static_cast<float>(i) * 0.25f + 100.0f - static_cast<float>(i));
  }
}

TEST_F(Funct, MatrixMulMatchesReference) {
  const Workload w = workloads::make_matrix_mul();
  const std::uint64_t m = 32;
  const std::uint64_t bytes = 8 * m * m;
  const std::uint64_t pa = dalloc(bytes), pb = dalloc(bytes), pc = dalloc(bytes);
  std::vector<double> A(m * m), B(m * m);
  for (std::uint64_t i = 0; i < m * m; ++i) {
    A[i] = 0.25 * static_cast<double>(i % 17) - 1.0;
    B[i] = 0.5 * static_cast<double>(i % 13) + 0.125;
  }
  mem.copy_in(pa, A.data(), bytes);
  mem.copy_in(pb, B.data(), bytes);
  run(w, {pa, pb, pc}, m);
  for (std::uint64_t r = 0; r < m; r += 7) {
    for (std::uint64_t c = 0; c < m; c += 5) {
      double ref = 0.0;
      for (std::uint64_t k = 0; k < m; ++k) ref += A[r * m + k] * B[k * m + c];
      EXPECT_NEAR(mem.read<double>(pc + 8 * (r * m + c)), ref, 1e-9)
          << "C[" << r << "," << c << "]";
    }
  }
}

TEST_F(Funct, BlackScholesSatisfiesParityAndBounds) {
  const Workload w = workloads::make_black_scholes();
  const std::uint64_t n = 500;
  const std::uint64_t ps = dalloc(4 * n), px = dalloc(4 * n), pt = dalloc(4 * n),
                      pcall = dalloc(4 * n), pput = dalloc(4 * n);
  for (std::uint64_t i = 0; i < n; ++i) {
    mem.write<float>(ps + 4 * i, 20.0f + static_cast<float>(i % 50));
    mem.write<float>(px + 4 * i, 30.0f + static_cast<float>(i % 20));
    mem.write<float>(pt + 4 * i, 0.25f + 0.05f * static_cast<float>(i % 10));
  }
  run(w, {ps, px, pt, pcall, pput}, n);
  for (std::uint64_t i = 0; i < n; i += 13) {
    const float s = mem.read<float>(ps + 4 * i);
    const float x = mem.read<float>(px + 4 * i);
    const float t = mem.read<float>(pt + 4 * i);
    const float call = mem.read<float>(pcall + 4 * i);
    const float put = mem.read<float>(pput + 4 * i);
    const float disc = std::exp(-0.02f * t);
    // Put-call parity holds by construction; check it survives the IR.
    EXPECT_NEAR(call - put, s - x * disc, 1e-3f);
    // A call is worth at most S.
    EXPECT_LE(call, s + 1e-3f);
  }
}

TEST_F(Funct, MergeSortStepsSortCompletely) {
  const Workload w = workloads::make_merge_sort();
  const std::uint64_t n = 256;  // power of two for the bitonic network
  const std::uint64_t data = dalloc(8 * n);
  std::vector<std::int64_t> values(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    values[i] = static_cast<std::int64_t>((i * 7919 + 13) % 1000);
  }
  mem.copy_in(data, values.data(), 8 * n);

  // Full bitonic cascade: k = 2,4,...,n; j = k/2 ... 1.
  for (std::uint64_t k = 2; k <= n; k <<= 1) {
    for (std::uint64_t j = k >> 1; j >= 1; j >>= 1) {
      KernelArgs args;
      args.push_ptr(data);
      args.push_i64(static_cast<std::int64_t>(j));
      args.push_i64(static_cast<std::int64_t>(k));
      args.push_i64(static_cast<std::int64_t>(n));
      interp.run(w.kernel, w.dims(n), args, mem);
    }
  }
  std::vector<std::int64_t> out(n);
  mem.copy_out(out.data(), data, 8 * n);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(out, values);
}

TEST_F(Funct, HistogramCountsEveryByte) {
  const Workload w = workloads::make_histogram();
  const std::uint64_t n = 4096;
  const std::uint64_t data = dalloc(n), hist = dalloc(256 * 8);
  std::vector<std::uint64_t> expected(256, 0);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint8_t v = static_cast<std::uint8_t>((i * 31 + 7) % 256);
    mem.write<std::uint8_t>(data + i, v);
    ++expected[v];
  }
  mem.fill(hist, 0, 256 * 8);
  run(w, {data, hist}, n);
  std::uint64_t total = 0;
  for (int bin = 0; bin < 256; ++bin) {
    const auto count =
        static_cast<std::uint64_t>(
            mem.read<std::int64_t>(hist + 8 * static_cast<std::uint64_t>(bin)));
    EXPECT_EQ(count, expected[static_cast<std::size_t>(bin)]) << "bin " << bin;
    total += count;
  }
  EXPECT_EQ(total, n);
}

TEST_F(Funct, ReductionSumsBlocks) {
  const Workload w = workloads::make_reduction();
  const std::uint64_t n = 1024;  // 4 blocks of 256
  const std::uint64_t in = dalloc(4 * n), out = dalloc(4 * 4);
  double expected_total = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const float v = 0.001f * static_cast<float>(i % 97) + 0.5f;
    mem.write<float>(in + 4 * i, v);
    expected_total += v;
  }
  run(w, {in, out}, n);
  double got = 0.0;
  for (int blk = 0; blk < 4; ++blk) {
    got += mem.read<float>(out + 4 * static_cast<std::uint64_t>(blk));
  }
  EXPECT_NEAR(got, expected_total, 0.05);
}

TEST_F(Funct, SegScanStepAddsStridedNeighbor) {
  const Workload w = workloads::make_segmentation_tree();
  const std::uint64_t n = 64;
  const std::uint64_t in = dalloc(4 * n), out = dalloc(4 * n);
  for (std::uint64_t i = 0; i < n; ++i) mem.write<float>(in + 4 * i, 1.0f);
  // stride 4
  KernelArgs args;
  args.push_ptr(in);
  args.push_ptr(out);
  args.push_i64(4);
  args.push_i64(static_cast<std::int64_t>(n));
  interp.run(w.kernel, w.dims(n), args, mem);
  for (std::uint64_t i = 0; i < n; ++i) {
    const float expect = (i >= 4) ? 2.0f : 1.0f;
    EXPECT_FLOAT_EQ(mem.read<float>(out + 4 * i), expect) << i;
  }
}

TEST_F(Funct, SobelDetectsVerticalEdge) {
  const Workload w = workloads::make_sobel_filter();
  const std::uint64_t width = 32, n = width * width;
  const std::uint64_t in = dalloc(n), out = dalloc(n);
  // Left half black, right half white: strong response at the boundary.
  for (std::uint64_t y = 0; y < width; ++y) {
    for (std::uint64_t x = 0; x < width; ++x) {
      mem.write<std::uint8_t>(in + y * width + x, x < width / 2 ? 0 : 200);
    }
  }
  run(w, {in, out}, n);
  const std::uint64_t mid_row = (width / 2) * width;
  const auto at = [&](std::uint64_t x) {
    return mem.read<std::uint8_t>(out + mid_row + x);
  };
  EXPECT_EQ(at(4), 0);                 // flat region
  EXPECT_EQ(at(width - 4), 0);         // flat region
  EXPECT_GT(at(width / 2 - 1), 100);   // edge response (clamped at 255)
  EXPECT_GT(at(width / 2), 100);
}

TEST_F(Funct, MandelbrotInteriorExhaustsBudgetExteriorEscapes) {
  const Workload w = workloads::make_mandelbrot();
  const std::uint64_t n = 64;
  const std::uint64_t out = dalloc(4 * n);
  // Row across the real axis from -2.5 (outside) into the set.
  KernelArgs args;
  args.push_ptr(out);
  args.push_i64(static_cast<std::int64_t>(n));  // width = n → single row
  args.push_i64(50);                            // max_iter
  args.push_f64(-2.5);
  args.push_f64(0.0);
  args.push_f64(2.5 / static_cast<double>(n));
  args.push_i64(static_cast<std::int64_t>(n));
  interp.run(w.kernel, w.dims(n), args, mem);
  EXPECT_LT(mem.read<std::int32_t>(out + 0), 3);         // far outside: fast escape
  EXPECT_EQ(mem.read<std::int32_t>(out + 4 * (n - 1)), 50);  // c ≈ -0.04: interior
}

TEST_F(Funct, StereoDisparityFindsShift) {
  const Workload w = workloads::make_stereo_disparity();
  const std::uint64_t n = 1024;
  const std::uint64_t left = dalloc(n), right = dalloc(n), disp = dalloc(4 * n);
  // The kernel compares left[i] against right[i+d]; build the right image
  // so that right[i] = left[i-5], making d = 5 the perfect match.
  const std::uint64_t shift = 5;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint8_t v = static_cast<std::uint8_t>((i * 37 + 11) % 251);
    mem.write<std::uint8_t>(left + i, v);
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint8_t v = (i >= shift) ? mem.read<std::uint8_t>(left + i - shift) : 0;
    mem.write<std::uint8_t>(right + i, v);
  }
  run(w, {left, right, disp}, n);
  std::uint64_t exact = 0;
  for (std::uint64_t i = 100; i < 900; ++i) {
    const std::int32_t d = mem.read<std::int32_t>(disp + 4 * i);
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 16);
    if (d == static_cast<std::int32_t>(shift)) ++exact;
  }
  // The winner-takes-all search should lock onto the true disparity almost
  // everywhere (rare pseudo-random value collisions can tie at another d).
  EXPECT_GT(exact, 700u);
}

TEST_F(Funct, Dct8x8ConstantTileYieldsDcRow) {
  const Workload w = workloads::make_dct8x8();
  const std::uint64_t n = 64;  // one tile
  const std::uint64_t in = dalloc(4 * n), coef = dalloc(64 * 4), out = dalloc(4 * n);
  // DCT matrix rows: row 0 = 1/sqrt(8) (DC), others orthogonal cosines.
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      const double v = (r == 0)
                           ? 1.0 / std::sqrt(8.0)
                           : 0.5 * std::cos((2 * c + 1) * r * 3.14159265358979 / 16.0);
      mem.write<float>(coef + 4 * static_cast<std::uint64_t>(r * 8 + c),
                       static_cast<float>(v));
    }
  }
  for (std::uint64_t i = 0; i < n; ++i) mem.write<float>(in + 4 * i, 1.0f);
  run(w, {in, coef, out}, n);
  // Constant input: only the DC coefficient (tx == 0) is non-zero.
  for (int ty = 0; ty < 8; ++ty) {
    EXPECT_NEAR(mem.read<float>(out + 4 * static_cast<std::uint64_t>(ty * 8 + 0)),
                8.0f / std::sqrt(8.0f), 1e-4f);
    for (int tx = 1; tx < 8; ++tx) {
      EXPECT_NEAR(mem.read<float>(out + 4 * static_cast<std::uint64_t>(ty * 8 + tx)), 0.0f,
                  1e-4f)
          << "ty=" << ty << " tx=" << tx;
    }
  }
}

TEST_F(Funct, NbodySymmetricPairLeavesNetForceNearZero) {
  const Workload w = workloads::make_nbody();
  const std::uint64_t n = 2;
  const std::uint64_t pos = dalloc(4 * n), vel = dalloc(4 * n);
  mem.write<float>(pos + 0, -1.0f);
  mem.write<float>(pos + 4, 1.0f);
  mem.write<float>(vel + 0, 0.0f);
  mem.write<float>(vel + 4, 0.0f);
  run(w, {pos, vel}, n);
  const float v0 = mem.read<float>(vel + 0);
  const float v1 = mem.read<float>(vel + 4);
  EXPECT_GT(v0, 0.0f);          // pulled toward +1
  EXPECT_LT(v1, 0.0f);          // pulled toward -1
  EXPECT_NEAR(v0 + v1, 0.0f, 1e-6f);  // momentum conservation
}

TEST_F(Funct, VolumeFilterPreservesConstantField) {
  const Workload w = workloads::make_volume_filtering();
  const std::uint64_t n = 512;  // 8^3
  const std::uint64_t in = dalloc(4 * n), out = dalloc(4 * n);
  for (std::uint64_t i = 0; i < n; ++i) mem.write<float>(in + 4 * i, 3.0f);
  run(w, {in, out}, n);
  for (std::uint64_t i = 0; i < n; i += 19) {
    EXPECT_NEAR(mem.read<float>(out + 4 * i), 3.0f, 1e-5f);
  }
}

TEST_F(Funct, BicubicInterpolationReproducesLinearRamp) {
  const Workload w = workloads::make_bicubic_texture();
  const std::uint64_t n = 256;
  const std::uint64_t in = dalloc(4 * n), out = dalloc(4 * n);
  for (std::uint64_t i = 0; i < n; ++i) {
    mem.write<float>(in + 4 * i, static_cast<float>(i));
  }
  run(w, {in, out}, n);
  // Catmull-Rom reproduces linear functions exactly (away from the clamped
  // borders): out[i] = in[i * 0.5].
  for (std::uint64_t i = 8; i < n - 8; i += 11) {
    EXPECT_NEAR(mem.read<float>(out + 4 * i), 0.5f * static_cast<float>(i), 1e-2f) << i;
  }
}

TEST_F(Funct, SmokeParticlesIntegrateVelocity) {
  const Workload w = workloads::make_smoke_particles();
  const std::uint64_t n = 16;
  const std::uint64_t pos = dalloc(4 * n), vel = dalloc(4 * n);
  for (std::uint64_t i = 0; i < n; ++i) {
    mem.write<float>(pos + 4 * i, 0.0f);
    mem.write<float>(vel + 4 * i, 1.0f);
  }
  run(w, {pos, vel}, n);
  // vel' = 1*0.995 - 9.8*0.01 = 0.897; pos' = vel' * 0.01
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(mem.read<float>(vel + 4 * i), 0.897f, 1e-5f);
    EXPECT_NEAR(mem.read<float>(pos + 4 * i), 0.00897f, 1e-6f);
  }
}

// ---- App-shaped pipeline apps: scalar golden models, byte-exact -------------

/// Forces a rounding step per operation. The interpreter rounds every f32 op
/// through a 32-bit register, so the golden models must too — and the
/// volatile round-trip also stops the host compiler from contracting
/// mul+add chains into FMAs the kernels don't use.
float r32(float v) {
  volatile float f = v;
  return f;
}

/// Differential fixture for the pipeline apps: fills each app's input
/// buffers with its own fill_inputs, runs all stages through the
/// interpreter at a given worker count, and reads device results back.
/// Every app is checked byte-exactly against a scalar C++ reference at
/// workers {1, 2, 4, 8} — the grid-parallel interpreter must not perturb a
/// single bit of any stage's output.
class AppPipeline : public Funct {
 protected:
  /// Nonzero so the jitter-aware scalar arguments are exercised too.
  static constexpr std::uint64_t kJitter = 12345;

  std::vector<std::vector<std::uint8_t>> host;
  std::vector<std::uint64_t> addrs;

  void setup_buffers(const Workload& w, std::uint64_t n) {
    const auto specs = w.buffers(n);
    host.assign(specs.size(), {});
    addrs.clear();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      host[i].assign(specs[i].bytes, 0);
      addrs.push_back(dalloc(specs[i].bytes));
    }
    if (w.fill_inputs) w.fill_inputs(n, host);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].is_input) mem.copy_in(addrs[i], host[i].data(), host[i].size());
    }
  }

  float in_f32(std::size_t buf, std::uint64_t i) const {
    float v;
    std::memcpy(&v, host[buf].data() + 4 * i, 4);
    return v;
  }

  void run_pipeline(const Workload& w, std::uint64_t n, std::size_t workers) {
    Interpreter::Options opts;
    opts.workers = workers;
    for (const auto& st : w.stages) {
      interp.run(st.kernel, st.dims(n), st.args(addrs, n, kJitter), mem, opts);
    }
  }

  std::vector<std::uint8_t> read_buf(std::size_t buf, std::uint64_t bytes) {
    std::vector<std::uint8_t> out(bytes);
    mem.copy_out(out.data(), addrs[buf], bytes);
    return out;
  }

  static std::vector<std::uint8_t> bytes_of(const std::vector<float>& v) {
    std::vector<std::uint8_t> out(4 * v.size());
    std::memcpy(out.data(), v.data(), out.size());
    return out;
  }
};

TEST_F(AppPipeline, GraphAnalyticsMatchesScalarModelAtEveryWorkerCount) {
  const Workload w = workloads::make_graph_analytics();
  const std::uint64_t n = 256, deg = 8;  // buffers are laid out for degree 8
  setup_buffers(w, n);

  // Golden model, float ops in kernel order: BFS relaxation over the CSR
  // neighbors, then PageRank contribute + gather.
  std::vector<float> dist_out(n), contrib(n), rank_out(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    float best = in_f32(1, v);
    for (std::uint64_t j = 0; j < deg; ++j) {
      const std::uint64_t u = workloads::graph_neighbor(v, static_cast<std::uint32_t>(j), n);
      best = std::fmin(best, r32(in_f32(1, u) + 1.0f));
    }
    dist_out[v] = best;
  }
  const float scale = workloads::graph_damping(kJitter) / static_cast<float>(deg);
  for (std::uint64_t v = 0; v < n; ++v) contrib[v] = r32(in_f32(3, v) * scale);
  const float base =
      (1.0f - workloads::graph_damping(kJitter)) / static_cast<float>(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    float acc = 0.0f;
    for (std::uint64_t j = 0; j < deg; ++j) {
      const std::uint64_t u = workloads::graph_neighbor(v, static_cast<std::uint32_t>(j), n);
      acc = r32(acc + contrib[u]);
    }
    rank_out[v] = r32(acc + base);
  }

  for (const std::size_t workers : {1, 2, 4, 8}) {
    run_pipeline(w, n, workers);
    EXPECT_EQ(read_buf(2, 4 * n), bytes_of(dist_out)) << "dist_out, workers=" << workers;
    EXPECT_EQ(read_buf(5, 4 * n), bytes_of(rank_out)) << "rank_out, workers=" << workers;
  }
}

TEST_F(AppPipeline, MlInferenceMatchesScalarModelAtEveryWorkerCount) {
  const Workload w = workloads::make_ml_inference();
  const std::uint64_t n = 128, d = 32;  // inner dim / softmax group size
  setup_buffers(w, n);

  std::vector<float> y0(n), y1(n), probs(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    float acc = 0.0f;
    for (std::uint64_t k = 0; k < d; ++k) {
      acc = r32(acc + r32(in_f32(0, k) * in_f32(1, i * d + k)));
    }
    y0[i] = acc;
  }
  const float gain = workloads::ml_gain(kJitter);
  for (std::uint64_t i = 0; i < n; ++i) {
    float v = r32(y0[i] + in_f32(2, i));
    v = std::fmax(v, 0.0f);  // ReLU
    y1[i] = r32(v * gain);
  }
  const float invt = workloads::ml_inv_temperature(kJitter);
  for (std::uint64_t g = 0; g < n / d; ++g) {
    float m = y1[g * d];
    for (std::uint64_t k = 1; k < d; ++k) m = std::fmax(m, y1[g * d + k]);
    float sum = 0.0f;
    for (std::uint64_t k = 0; k < d; ++k) {
      float v = r32(y1[g * d + k] - m);
      v = r32(v * invt);
      const float e = std::exp(v);
      sum = r32(sum + e);
      probs[g * d + k] = e;
    }
    for (std::uint64_t k = 0; k < d; ++k) {
      probs[g * d + k] = r32(probs[g * d + k] / sum);
    }
  }

  for (const std::size_t workers : {1, 2, 4, 8}) {
    run_pipeline(w, n, workers);
    EXPECT_EQ(read_buf(3, 4 * n), bytes_of(y0)) << "y0, workers=" << workers;
    EXPECT_EQ(read_buf(5, 4 * n), bytes_of(probs)) << "probs, workers=" << workers;
  }
}

TEST_F(AppPipeline, CamPipelineMatchesScalarModelAtEveryWorkerCount) {
  const Workload w = workloads::make_cam_pipeline();
  const std::uint64_t n = 300;  // not a multiple of the block size: guard tail
  setup_buffers(w, n);

  std::vector<float> work(n), blur(n), outq(n);
  const float gain = workloads::cam_gain(kJitter);
  const float qstep = workloads::cam_qstep(kJitter);
  for (std::uint64_t i = 0; i < n; ++i) work[i] = r32(in_f32(0, i) * gain);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t li = i > 0 ? i - 1 : 0;
    const std::uint64_t ri = std::min(i + 1, n - 1);
    float acc = r32(work[li] * 0.25f);
    acc = r32(acc + r32(work[i] * 0.5f));
    acc = r32(acc + r32(work[ri] * 0.25f));
    blur[i] = acc;
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    float v = r32(blur[i] / qstep);
    v = std::floor(v);
    outq[i] = r32(v * qstep);
  }

  for (const std::size_t workers : {1, 2, 4, 8}) {
    run_pipeline(w, n, workers);
    EXPECT_EQ(read_buf(3, 4 * n), bytes_of(outq)) << "outq, workers=" << workers;
  }
}

TEST_F(Funct, MarchingCubesClassifiesAgainstIso) {
  const Workload w = workloads::make_marching_cubes();
  const std::uint64_t n = 64;
  const std::uint64_t field = dalloc(4 * n), table = dalloc(16 * 4), count = dalloc(4 * n);
  // Lookup table: numVerts[idx] = idx (identity) for easy checking.
  for (int i = 0; i < 16; ++i) {
    mem.write<std::int32_t>(table + 4 * static_cast<std::uint64_t>(i), i);
  }
  // field value 0 (< iso 0.5) in the first half, 1.0 in the second half.
  for (std::uint64_t i = 0; i < n; ++i) {
    mem.write<float>(field + 4 * i, i < n / 2 ? 0.0f : 1.0f);
  }
  run(w, {field, table, count}, n);
  // Deep inside the low half, all 4 corners are below iso: idx = 0b1111.
  EXPECT_EQ(mem.read<std::int32_t>(count + 4 * 5), 15);
  // Deep inside the high half: no corner below iso: idx = 0.
  EXPECT_EQ(mem.read<std::int32_t>(count + 4 * (n - 10)), 0);
}

}  // namespace
}  // namespace sigvp
