// Tests of the deterministic fault-injection layer and the fault-tolerant
// host stack (PR 2): zero-fault identity, bit-identical faulty sweeps across
// worker counts, byte-exact functional results under loss/retry/fallback,
// per-VP order across device resets, coalesced-group recovery, quarantine
// threshold edges, stalled-VP restart, and the diagnostics satellites
// (bounds checks, dispatcher stall report).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/scenario.hpp"
#include "fault/health.hpp"
#include "run/sweep.hpp"
#include "util/check.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

// --- scenario-level helpers ------------------------------------------------------

FaultConfig lossy_faults() {
  FaultConfig f;
  f.drop_rate = 0.3;  // high enough that a short functional run sees faults
  f.dup_rate = 0.1;
  f.latency_spike_rate = 0.1;
  f.launch_fail_rate = 0.1;
  return f;
}

workloads::AppTraits chatty(const workloads::Workload& w) {
  workloads::AppTraits t = w.traits;
  t.iterations = 4;
  t.launches_per_iter = 2;
  t.iter_h2d_bytes = 0;
  t.iter_d2h_bytes = 0;
  return t;
}

ScenarioConfig sigma_config(bool optimized, std::size_t vps) {
  ScenarioConfig cfg;
  cfg.backend = Backend::kSigmaVp;
  cfg.mode = ExecMode::kAnalytic;
  if (optimized) {
    cfg.dispatch.interleave = true;
    cfg.dispatch.coalesce = true;
    cfg.dispatch.coalesce_eager_peers = static_cast<std::uint32_t>(vps - 1);
    cfg.async_launches = true;
  }
  return cfg;
}

std::vector<AppInstance> chatty_apps(const workloads::Workload& w, std::size_t vps) {
  std::vector<AppInstance> apps;
  for (std::size_t i = 0; i < vps; ++i) {
    apps.push_back(AppInstance{&w, w.test_n, chatty(w)});
  }
  return apps;
}

void expect_same_result(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.app_done_us, b.app_done_us);
  EXPECT_EQ(a.jobs_dispatched, b.jobs_dispatched);
  EXPECT_EQ(a.reorders, b.reorders);
  EXPECT_EQ(a.coalesced_groups, b.coalesced_groups);
  EXPECT_EQ(a.coalesced_jobs, b.coalesced_jobs);
  EXPECT_EQ(a.ipc_messages, b.ipc_messages);
  EXPECT_EQ(a.gpu_dynamic_energy_j, b.gpu_dynamic_energy_j);
  EXPECT_EQ(a.gpu_compute_busy_us, b.gpu_compute_busy_us);
  EXPECT_EQ(a.gpu_copy_busy_us, b.gpu_copy_busy_us);
  EXPECT_TRUE(a.fault == b.fault);
}

// --- zero-fault identity ---------------------------------------------------------

TEST(FaultInjection, ZeroFaultPlanIsInertAndSeedIndependent) {
  const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");

  // Default config: the zero-fault plan. Nothing may consult the plan or the
  // recovery knobs, so changing either must not perturb a single field.
  ScenarioConfig base = sigma_config(true, 4);
  ScenarioConfig tweaked = base;
  tweaked.fault.seed = 0xdeadbeef;  // still zero-fault: all rates 0
  tweaked.recovery.max_retries = 1;
  tweaked.recovery.ack_timeout_us = 1.0;

  const ScenarioResult a = run_scenario(base, chatty_apps(w, 4));
  const ScenarioResult b = run_scenario(tweaked, chatty_apps(w, 4));
  expect_same_result(a, b);
  EXPECT_TRUE(a.fault == FaultStats{});  // inactive, every counter zero
}

// --- determinism across worker counts --------------------------------------------

TEST(FaultInjection, FaultySweepIsBitIdenticalAcrossWorkerCounts) {
  const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");

  std::vector<run::SweepJob> jobs;
  for (bool optimized : {false, true}) {
    for (double drop : {0.05, 0.6}) {
      run::SweepJob job;
      job.name = std::string(optimized ? "opt" : "plain") + "/" + std::to_string(drop);
      job.config = sigma_config(optimized, 4);
      job.config.fault = lossy_faults();
      job.config.fault.drop_rate = drop;  // 0.6 exhausts budgets -> fallback
      job.config.fault.launch_fail_rate = 0.02;
      job.config.fault.device_reset_at_us = {400.0};
      job.apps = chatty_apps(w, 4);
      jobs.push_back(std::move(job));
    }
  }

  const run::SweepResult serial = run::SweepRunner(1).run(jobs);
  const run::SweepResult sharded = run::SweepRunner(4).run(jobs);
  ASSERT_EQ(serial.jobs.size(), sharded.jobs.size());
  for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
    SCOPED_TRACE(serial.jobs[i].name);
    expect_same_result(serial.jobs[i].result, sharded.jobs[i].result);
    EXPECT_TRUE(serial.jobs[i].result.fault.active);
    EXPECT_EQ(serial.jobs[i].result.fault.unrecovered_jobs, 0u);
  }
  // The heavy-drop points must actually exercise the degradation machinery.
  bool saw_faults = false, saw_fallback = false;
  for (const auto& j : serial.jobs) {
    if (j.result.fault.messages_dropped > 0) saw_faults = true;
    if (j.result.fault.fallbacks > 0) saw_fallback = true;
  }
  EXPECT_TRUE(saw_faults);
  EXPECT_TRUE(saw_fallback);
}

// --- functional differential under faults ----------------------------------------

ScenarioResult run_functional(const workloads::Workload& w, Backend backend,
                              bool optimized, FaultConfig fault) {
  ScenarioConfig cfg = sigma_config(optimized, 2);
  cfg.backend = backend;
  cfg.mode = ExecMode::kFunctional;
  cfg.functional_io = true;
  cfg.fault = fault;
  workloads::AppTraits t = w.traits;
  t.iterations = 1;
  t.launches_per_iter = 1;
  t.iter_h2d_bytes = 0;
  t.iter_d2h_bytes = 0;
  std::vector<AppInstance> apps;
  for (std::size_t i = 0; i < 2; ++i) apps.push_back(AppInstance{&w, w.test_n, t});
  return run_scenario(cfg, apps);
}

TEST(FaultInjection, OutputsMatchEmulationByteExactUnderFaults) {
  // Retries, duplications and re-queues must never change what is computed:
  // the faulty SigmaVP backend must still be byte-identical to the clean
  // emulation reference.
  const auto suite = workloads::make_suite();
  std::size_t tested = 0;
  for (const auto& w : suite) {
    if (!w.fill_inputs) continue;
    if (tested == 3) break;  // three workloads keep the test fast
    SCOPED_TRACE(w.app);
    ++tested;
    const ScenarioResult ref = run_functional(w, Backend::kEmulationOnVp, false, {});
    const ScenarioResult faulty =
        run_functional(w, Backend::kSigmaVp, true, lossy_faults());
    EXPECT_GT(faulty.fault.messages_dropped + faulty.fault.retransmits, 0u);
    EXPECT_EQ(faulty.fault.unrecovered_jobs, 0u);
    ASSERT_EQ(ref.app_outputs.size(), faulty.app_outputs.size());
    for (std::size_t vp = 0; vp < ref.app_outputs.size(); ++vp) {
      ASSERT_FALSE(ref.app_outputs[vp].empty());
      EXPECT_TRUE(ref.app_outputs[vp] == faulty.app_outputs[vp]) << "vp " << vp;
    }
  }
  EXPECT_EQ(tested, 3u);
}

TEST(FaultInjection, EmulationFallbackPreservesOutputsByteExact) {
  // A drop storm exhausts the retry budget, degrades both VPs to the
  // EmulationDriver fallback, and the run still terminates with the exact
  // reference bytes — graceful degradation end to end.
  const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");
  FaultConfig storm = lossy_faults();
  storm.drop_rate = 0.9;
  storm.launch_fail_rate = 0.0;
  const ScenarioResult ref = run_functional(w, Backend::kEmulationOnVp, false, {});
  const ScenarioResult faulty = run_functional(w, Backend::kSigmaVp, false, storm);
  EXPECT_GT(faulty.fault.fallbacks, 0u);
  EXPECT_GT(faulty.fault.fallback_jobs, 0u);
  EXPECT_EQ(faulty.fault.unrecovered_jobs, 0u);
  ASSERT_EQ(ref.app_outputs.size(), faulty.app_outputs.size());
  for (std::size_t vp = 0; vp < ref.app_outputs.size(); ++vp) {
    EXPECT_TRUE(ref.app_outputs[vp] == faulty.app_outputs[vp]) << "vp " << vp;
  }
}

// --- dispatcher rig: order across resets, group recovery -------------------------

constexpr std::uint64_t kMem = 256ull * 1024 * 1024;

struct Completion {
  std::uint32_t vp;
  std::uint64_t seq;
  SimTime end;
};

struct FaultRig {
  EventQueue q;
  GpuDevice dev;
  Dispatcher disp;
  FaultPlan plan;
  FaultStats stats;
  HealthPolicy health;

  FaultRig(DispatchConfig cfg, std::size_t vps, FaultConfig fault,
           RecoveryConfig recovery = {})
      : dev(q, make_quadro4000(), kMem, "gpu"),
        disp(q, dev, zero_overhead(cfg)),
        plan(fault),
        stats{},
        health(recovery, stats) {
    stats.active = true;
    dev.set_fault(&plan, &stats);
    disp.set_fault(&plan, &stats, &health, recovery);
    for (std::size_t i = 0; i < vps; ++i) {
      disp.register_vp();
      health.register_vp();
    }
  }

  static DispatchConfig zero_overhead(DispatchConfig cfg) {
    cfg.dispatch_overhead_us = 0.0;
    return cfg;
  }
};

Job analytic_kernel(const workloads::Workload& va, std::uint32_t vp, std::uint64_t seq,
                    std::vector<Completion>* log) {
  Job j;
  j.vp_id = vp;
  j.seq_in_vp = seq;
  j.kind = JobKind::kKernel;
  j.launch.request.kernel = &va.kernel;
  j.launch.request.dims.block_x = 128;
  j.launch.request.dims.grid_x = 4;
  j.launch.request.mode = ExecMode::kAnalytic;
  j.launch.request.analytic_profile.instr_counts[InstrClass::kFp32] = 300'000;
  j.launch.request.mem_behavior = MemoryBehavior{1 << 12, 500, 0.5, 0.9};
  j.on_complete = [log, vp, seq](SimTime end, const KernelExecStats*) {
    log->push_back({vp, seq, end});
  };
  return j;
}

void expect_per_vp_order(const std::vector<Completion>& log, std::size_t vps,
                         std::size_t jobs_per_vp) {
  std::vector<std::uint64_t> next(vps, 0);
  for (const Completion& c : log) {
    EXPECT_EQ(c.seq, next[c.vp]) << "vp " << c.vp << " completed out of order";
    ++next[c.vp];
  }
  for (std::size_t vp = 0; vp < vps; ++vp) {
    EXPECT_EQ(next[vp], jobs_per_vp) << "vp " << vp << " lost jobs";
  }
}

TEST(FaultInjection, PerVpOrderSurvivesDeviceReset) {
  const workloads::Workload va = workloads::make_vector_add();
  constexpr std::size_t kVps = 4, kJobs = 6;
  FaultConfig f;
  f.device_reset_at_us = {40.0};  // mid-flight: kernels are tens of us long

  DispatchConfig cfg;
  cfg.interleave = true;
  FaultRig rig(cfg, kVps, f);
  std::vector<Completion> log;
  for (std::uint64_t seq = 0; seq < kJobs; ++seq) {
    for (std::uint32_t vp = 0; vp < kVps; ++vp) {
      rig.disp.submit(analytic_kernel(va, vp, seq, &log));
    }
  }
  rig.q.schedule_at(40.0, [&rig] { rig.disp.inject_device_reset(); });
  rig.q.run();

  EXPECT_TRUE(rig.disp.idle());
  EXPECT_EQ(rig.stats.device_resets, 1u);
  EXPECT_GE(rig.stats.ops_killed_by_reset, 1u);
  EXPECT_EQ(rig.stats.reset_requeues, rig.stats.ops_killed_by_reset);
  EXPECT_EQ(rig.stats.unrecovered_jobs, 0u);
  expect_per_vp_order(log, kVps, kJobs);
}

Job functional_vadd(const workloads::Workload& va, FaultRig& rig, std::uint32_t vp,
                    std::uint64_t seq, std::uint64_t n, std::vector<std::uint64_t>* addrs,
                    std::vector<Completion>* log) {
  for (const auto& spec : va.buffers(n)) addrs->push_back(rig.dev.malloc(spec.bytes));
  for (std::uint64_t i = 0; i < n; ++i) {
    rig.dev.memory().write<float>((*addrs)[0] + 4 * i, static_cast<float>(vp) + 0.25f);
    rig.dev.memory().write<float>((*addrs)[1] + 4 * i, static_cast<float>(i));
  }
  Job j;
  j.vp_id = vp;
  j.seq_in_vp = seq;
  j.kind = JobKind::kKernel;
  j.launch.request.kernel = &va.kernel;
  j.launch.request.dims = va.dims(n);
  j.launch.request.args = va.args(*addrs, n);
  j.launch.request.mode = ExecMode::kFunctional;
  j.launch.coalesce = va.coalesce(n);
  j.on_complete = [log, vp, seq](SimTime end, const KernelExecStats*) {
    log->push_back({vp, seq, end});
  };
  return j;
}

void expect_vadd_outputs(FaultRig& rig, const std::vector<std::vector<std::uint64_t>>& bufs,
                         std::uint64_t n) {
  for (std::uint32_t vp = 0; vp < bufs.size(); ++vp) {
    for (std::uint64_t i = 0; i < n; ++i) {
      const float expect = (static_cast<float>(vp) + 0.25f) + static_cast<float>(i);
      EXPECT_EQ(rig.dev.memory().read<float>(bufs[vp][2] + 4 * i), expect)
          << "vp " << vp << " elem " << i;
    }
  }
}

TEST(FaultInjection, CoalescedGroupResplitsOnMergedLaunchAbort) {
  // Every VP submits one coalescable functional vectorAdd; the merged launch
  // aborts (transient failure), the group re-splits to singles, the singles
  // retry and complete — with the exact expected output bytes.
  const workloads::Workload va = workloads::make_vector_add();
  constexpr std::size_t kVps = 4;
  constexpr std::uint64_t kN = 64;

  FaultConfig f;
  f.seed = 7;
  f.launch_fail_rate = 0.45;  // seeded: the merged launch aborts, retries pass
  RecoveryConfig rec;
  rec.max_launch_retries = 64;
  rec.quarantine_threshold = 1000;  // keep coalescing eligible throughout

  DispatchConfig cfg;
  cfg.interleave = true;
  cfg.coalesce = true;
  cfg.coalesce_eager_peers = kVps - 1;
  FaultRig rig(cfg, kVps, f, rec);

  std::vector<Completion> log;
  std::vector<std::vector<std::uint64_t>> bufs(kVps);
  for (std::uint32_t vp = 0; vp < kVps; ++vp) {
    rig.disp.submit(functional_vadd(va, rig, vp, 0, kN, &bufs[vp], &log));
  }
  rig.q.run();

  EXPECT_TRUE(rig.disp.idle());
  EXPECT_GE(rig.stats.launch_failures, 1u);
  EXPECT_GE(rig.stats.group_resplits, 1u);
  EXPECT_EQ(rig.stats.unrecovered_jobs, 0u);
  expect_per_vp_order(log, kVps, 1);
  expect_vadd_outputs(rig, bufs, kN);
}

TEST(FaultInjection, DeviceResetDuringCoalescedGroupRequeuesKilledMembers) {
  // First run the group cleanly to learn when it completes, then re-run with
  // a reset in the middle of that window: killed members re-queue, complete
  // in order, and the output bytes still match.
  const workloads::Workload va = workloads::make_vector_add();
  constexpr std::size_t kVps = 4;
  constexpr std::uint64_t kN = 64;

  DispatchConfig cfg;
  cfg.interleave = true;
  cfg.coalesce = true;
  cfg.coalesce_eager_peers = kVps - 1;

  SimTime clean_end = 0.0;
  {
    FaultConfig probe;  // enabled (reset listed) but the reset never fires
    probe.device_reset_at_us = {1e9};
    FaultRig rig(cfg, kVps, probe);
    std::vector<Completion> log;
    std::vector<std::vector<std::uint64_t>> bufs(kVps);
    for (std::uint32_t vp = 0; vp < kVps; ++vp) {
      rig.disp.submit(functional_vadd(va, rig, vp, 0, kN, &bufs[vp], &log));
    }
    rig.q.run();
    ASSERT_EQ(log.size(), kVps);
    EXPECT_GE(rig.stats.active ? rig.disp.coalesced_groups() : 0u, 1u);
    for (const Completion& c : log) clean_end = std::max(clean_end, c.end);
  }

  FaultConfig f;
  f.device_reset_at_us = {clean_end / 2.0};
  FaultRig rig(cfg, kVps, f);
  std::vector<Completion> log;
  std::vector<std::vector<std::uint64_t>> bufs(kVps);
  for (std::uint32_t vp = 0; vp < kVps; ++vp) {
    rig.disp.submit(functional_vadd(va, rig, vp, 0, kN, &bufs[vp], &log));
  }
  rig.q.schedule_at(clean_end / 2.0, [&rig] { rig.disp.inject_device_reset(); });
  rig.q.run();

  EXPECT_TRUE(rig.disp.idle());
  EXPECT_EQ(rig.stats.device_resets, 1u);
  EXPECT_GE(rig.stats.ops_killed_by_reset, 1u);
  EXPECT_GE(rig.stats.reset_requeues + rig.stats.group_resplits, 1u);
  EXPECT_EQ(rig.stats.unrecovered_jobs, 0u);
  expect_per_vp_order(log, kVps, 1);
  expect_vadd_outputs(rig, bufs, kN);
}

// --- quarantine threshold edges --------------------------------------------------

TEST(FaultInjection, QuarantineTriggersExactlyAtThreshold) {
  FaultStats stats;
  RecoveryConfig rec;
  rec.quarantine_threshold = 3;
  HealthPolicy health(rec, stats);
  health.register_vp();
  health.register_vp();

  int quarantine_calls = 0;
  health.on_quarantine = [&](std::uint32_t vp) {
    EXPECT_EQ(vp, 0u);
    ++quarantine_calls;
  };

  health.report_incident(0);
  health.report_incident(0);
  EXPECT_FALSE(health.quarantined(0));  // one below the threshold: still in
  EXPECT_EQ(stats.vps_quarantined, 0u);

  health.report_incident(0);
  EXPECT_TRUE(health.quarantined(0));  // exactly at the threshold: out
  EXPECT_EQ(quarantine_calls, 1);
  EXPECT_EQ(stats.vps_quarantined, 1u);

  health.report_incident(0);  // past the threshold: no re-fire
  EXPECT_EQ(quarantine_calls, 1);
  EXPECT_EQ(stats.vps_quarantined, 1u);

  EXPECT_FALSE(health.quarantined(1));  // the neighbour is untouched
  EXPECT_FALSE(health.failed(0));       // quarantine is not failure
}

TEST(FaultInjection, MarkFailedIsOneShotAndImpliesQuarantine) {
  FaultStats stats;
  HealthPolicy health(RecoveryConfig{}, stats);
  health.register_vp();
  int failed_calls = 0;
  health.on_failed = [&](std::uint32_t) { ++failed_calls; };

  EXPECT_TRUE(health.mark_failed(0));
  EXPECT_TRUE(health.failed(0));
  EXPECT_TRUE(health.quarantined(0));
  EXPECT_EQ(stats.fallbacks, 1u);

  EXPECT_FALSE(health.mark_failed(0));  // one-shot
  EXPECT_EQ(failed_calls, 1);
  EXPECT_EQ(stats.fallbacks, 1u);
}

// --- stalled VP restart ----------------------------------------------------------

TEST(FaultInjection, StalledVpIsRestartedByWatchdog) {
  const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");
  ScenarioConfig cfg = sigma_config(false, 2);
  cfg.fault.stall_vp = 1;
  cfg.fault.stall_after_completions = 2;
  const ScenarioResult r = run_scenario(cfg, chatty_apps(w, 2));
  EXPECT_EQ(r.fault.vp_stalls, 1u);
  EXPECT_EQ(r.fault.vp_restarts, 1u);
  EXPECT_EQ(r.fault.unrecovered_jobs, 0u);
  EXPECT_EQ(r.app_done_us.size(), 2u);
}

// --- diagnostics satellites ------------------------------------------------------

TEST(FaultInjection, VpControlBoundsChecksThrow) {
  EventQueue q;
  IpcManager ipc(q, IpcCostModel::shared_memory());
  ipc.register_vp("vp0");
  EXPECT_THROW(ipc.stop_vp(5), ContractError);
  EXPECT_THROW(ipc.resume_vp(5), ContractError);
  EXPECT_THROW(ipc.is_stopped(5), ContractError);
  EXPECT_NO_THROW(ipc.stop_vp(0));
  EXPECT_NO_THROW(ipc.resume_vp(0));
}

TEST(FaultInjection, DispatcherSubmitRejectsUnregisteredVp) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  Dispatcher disp(q, dev, DispatchConfig{});
  disp.register_vp();
  Job j;
  j.vp_id = 3;  // only vp0 exists
  j.kind = JobKind::kMemcpyH2D;
  j.bytes = 16;
  EXPECT_THROW(disp.submit(std::move(j)), ContractError);
}

TEST(FaultInjection, StallReportNamesStuckVps) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  DispatchConfig cfg;
  cfg.dispatch_overhead_us = 0.0;
  Dispatcher disp(q, dev, cfg);
  disp.register_vp();
  disp.register_vp();
  // A job submitted out of sequence order can never dispatch: the dispatcher
  // is stuck and the report must say which VP and what it waits for.
  Job j;
  j.vp_id = 1;
  j.seq_in_vp = 5;
  j.kind = JobKind::kMemcpyH2D;
  j.bytes = 16;
  disp.submit(std::move(j));
  q.run();
  EXPECT_FALSE(disp.idle());
  const std::string report = disp.stall_report();
  EXPECT_NE(report.find("1 job(s) queued"), std::string::npos) << report;
  EXPECT_NE(report.find("vp1"), std::string::npos) << report;
  EXPECT_NE(report.find("next_seq: 0"), std::string::npos) << report;
}

}  // namespace
}  // namespace sigvp
