#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace sigvp {
namespace {

TEST(TablePrinter, AlignsColumnsAndSeparatesHeader) {
  TablePrinter t({"Language", "Time (ms)"});
  t.add_row({"CUDA", "170.79"});
  t.add_row({"C", "8213.09"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Language"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("8213.09"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, CsvOutputHasOneLinePerRow) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinter, RejectsMismatchedRowWidth) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(TablePrinter, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), ContractError);
}

TEST(Format, FixedHelpers) {
  EXPECT_EQ(fmt_ms(170.791), "170.79");
  EXPECT_EQ(fmt_ratio(3.324), "3.32");
  EXPECT_EQ(fmt_int(42), "42");
  EXPECT_EQ(fmt_fixed(1.5, 3), "1.500");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Mape, ComputesMeanAbsolutePercentageError) {
  EXPECT_NEAR(mean_abs_pct_error({100.0, 200.0}, {110.0, 180.0}), 0.10, 1e-12);
}

TEST(Mape, RejectsBadInput) {
  EXPECT_THROW(mean_abs_pct_error({}, {}), ContractError);
  EXPECT_THROW(mean_abs_pct_error({1.0}, {1.0, 2.0}), ContractError);
  EXPECT_THROW(mean_abs_pct_error({0.0}, {1.0}), ContractError);
}

TEST(Check, RequireThrowsWithMessage) {
  try {
    SIGVP_REQUIRE(false, "custom context");
    FAIL() << "expected throw";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"), std::string::npos);
  }
}

}  // namespace
}  // namespace sigvp
