// Randomized stress / property tests of the foundational substrates.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "gpu/cache.hpp"
#include "mem/allocator.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace sigvp {
namespace {

TEST(StressAllocator, RandomAllocFreeNeverOverlapsAndAlwaysMerges) {
  Rng rng(20260707);
  FreeListAllocator alloc(0, 1 << 20);
  std::map<std::uint64_t, std::uint64_t> live;  // addr -> size

  for (int step = 0; step < 5000; ++step) {
    const bool do_alloc = live.empty() || rng.next_double() < 0.6;
    if (do_alloc) {
      const std::uint64_t size = 1 + rng.next_below(4096);
      const std::uint64_t align = 1ull << rng.next_below(8);
      const auto addr = alloc.allocate(size, align);
      if (!addr.has_value()) continue;  // fragmentation — legal
      EXPECT_EQ(*addr % align, 0u);
      // No overlap with any live block.
      for (const auto& [a, s] : live) {
        EXPECT_TRUE(*addr + size <= a || a + s <= *addr)
            << "overlap at step " << step;
      }
      live[*addr] = size;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.next_below(live.size())));
      alloc.free(it->first);
      live.erase(it);
    }
  }
  // Free everything: the allocator must coalesce back to one range able to
  // satisfy a full-capacity request.
  for (const auto& [a, s] : live) alloc.free(a);
  EXPECT_EQ(alloc.free_ranges(), 1u);
  EXPECT_EQ(alloc.bytes_allocated(), 0u);
  EXPECT_TRUE(alloc.allocate(1 << 20, 1).has_value());
}

TEST(StressCache, MatchesReferenceLruModel) {
  // Cross-check the cache simulator against a brute-force per-set LRU list.
  const CacheConfig cfg{4096, 64, 4};  // 16 sets, 4 ways
  CacheModel cache(cfg);
  std::vector<std::vector<std::uint64_t>> ref(cfg.num_sets());
  Rng rng(99);
  std::uint64_t ref_misses = 0, ref_accesses = 0;

  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t addr = rng.next_below(1 << 16);
    cache.access(addr, 1);
    const std::uint64_t line = addr / cfg.line_bytes;
    auto& set = ref[line % ref.size()];
    ++ref_accesses;
    auto it = std::find(set.begin(), set.end(), line);
    if (it != set.end()) {
      set.erase(it);
    } else {
      ++ref_misses;
      if (set.size() == cfg.associativity) set.pop_back();
    }
    set.insert(set.begin(), line);
  }
  EXPECT_EQ(cache.stats().accesses, ref_accesses);
  EXPECT_EQ(cache.stats().misses, ref_misses);
}

TEST(StressEventQueue, RandomScheduleRunsInNondecreasingTimeOrder) {
  EventQueue q;
  Rng rng(7);
  std::vector<SimTime> fired;
  // Seed events that recursively schedule more events at random offsets.
  std::function<void(int)> spawn = [&](int depth) {
    fired.push_back(q.now());
    if (depth >= 3) return;
    const int fanout = 1 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < fanout; ++i) {
      q.schedule_after(rng.next_double() * 100.0, [&spawn, depth] { spawn(depth + 1); });
    }
  };
  for (int i = 0; i < 50; ++i) {
    q.schedule_at(rng.next_double() * 1000.0, [&spawn] { spawn(0); });
  }
  q.run();
  EXPECT_GT(fired.size(), 50u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(StressEngine, ManyJobsBackToBackConserveBusyTime) {
  EventQueue q;
  Engine e(q, "stress");
  Rng rng(3);
  double total = 0.0;
  SimTime last_end = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double dur = rng.next_double() * 10.0;
    total += dur;
    e.submit(dur, [&last_end](SimTime end) { last_end = end; });
  }
  q.run();
  EXPECT_NEAR(e.busy_time(), total, 1e-6);
  // All submitted at t=0: a FIFO server finishes exactly at the work sum.
  EXPECT_NEAR(last_end, total, 1e-6);
}

}  // namespace
}  // namespace sigvp
