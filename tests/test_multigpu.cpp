// Tests of the multi-GPU host backend (DESIGN.md §17): the placement layer
// (initial LPT assignment, migration cost model, runtime migration), the
// HostGpuSet device complement, the `host_gpus` spec parser, the single-
// device byte-identity contract, determinism across workers and shards,
// capture replay and checkpoint resume with device assignments intact, and
// the sweep-JSON "host_gpus" block.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "gpu/host_gpu_set.hpp"
#include "run/host_gpus.hpp"
#include "run/json_writer.hpp"
#include "run/sweep.hpp"
#include "run/thread_pool.hpp"
#include "sched/placement.hpp"
#include "sim/event_queue.hpp"
#include "snapshot/serial.hpp"
#include "snapshot/state.hpp"
#include "util/check.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

// --- placement primitives ----------------------------------------------------

TEST(Placement, RoundRobinIgnoresWeightsAndSpeeds) {
  const std::vector<std::uint64_t> weights{100, 1, 1, 100, 1, 1};
  const std::vector<double> speeds{1.0, 4.0, 2.0};
  const auto a = initial_placement(PlacementPolicy::kRoundRobin, weights, speeds);
  ASSERT_EQ(a.size(), weights.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], static_cast<std::uint32_t>(i % speeds.size()));
  }
}

TEST(Placement, AffinitySplitsHeavyVpsAcrossDevices) {
  // Two heavy VPs at indices 0 and 4: round-robin on 2 devices stacks both
  // onto device 0; LPT must split them.
  const std::vector<std::uint64_t> weights{8, 1, 1, 1, 8, 1};
  const std::vector<double> speeds{1.0, 1.0};
  const auto rr = initial_placement(PlacementPolicy::kRoundRobin, weights, speeds);
  EXPECT_EQ(rr[0], rr[4]);
  const auto lpt = initial_placement(PlacementPolicy::kAffinity, weights, speeds);
  EXPECT_NE(lpt[0], lpt[4]);
  // Balanced totals: 8+1+1 vs 8+1+1.
  std::uint64_t load[2] = {0, 0};
  for (std::size_t i = 0; i < weights.size(); ++i) load[lpt[i]] += weights[i];
  EXPECT_EQ(load[0], load[1]);
}

TEST(Placement, AffinityScalesLoadByDeviceSpeed) {
  // Device 1 is 3x faster: both equal-weight VPs finish earlier there even
  // when stacked ((w + w) / 3 < w / 1).
  const std::vector<std::uint64_t> weights{4, 4};
  const std::vector<double> speeds{1.0, 3.0};
  const auto a = initial_placement(PlacementPolicy::kAffinity, weights, speeds);
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(a[1], 1u);
}

TEST(Placement, AffinityBreaksTiesDeterministically) {
  // All-equal weights and speeds: descending-weight sort is stable (ties by
  // ascending index) and finish-time ties go to the lowest device index, so
  // the assignment degenerates to round-robin — and is repeatable.
  const std::vector<std::uint64_t> weights(8, 5);
  const std::vector<double> speeds{1.0, 1.0, 1.0, 1.0};
  const auto a = initial_placement(PlacementPolicy::kAffinity, weights, speeds);
  const auto b = initial_placement(PlacementPolicy::kAffinity, weights, speeds);
  EXPECT_EQ(a, b);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_EQ(a[i], static_cast<std::uint32_t>(i % speeds.size()));
  }
}

TEST(Placement, EmptyAndSingleDeviceDegenerate) {
  EXPECT_TRUE(
      initial_placement(PlacementPolicy::kAffinity, {}, {1.0, 1.0}).empty());
  const auto one =
      initial_placement(PlacementPolicy::kAffinity, {3, 9, 1}, {2.0});
  EXPECT_EQ(one, (std::vector<std::uint32_t>{0, 0, 0}));
}

TEST(Placement, MigrationCostIsFixedPlusBytesOverBandwidth) {
  PlacementConfig cfg;
  cfg.migration_fixed_us = 250.0;
  cfg.migration_gbps = 8.0;  // 8 GB/s == 8000 bytes/us
  EXPECT_DOUBLE_EQ(migration_cost_us(cfg, 0), 250.0);
  EXPECT_DOUBLE_EQ(migration_cost_us(cfg, 8000), 251.0);
  EXPECT_DOUBLE_EQ(migration_cost_us(cfg, 80'000'000), 250.0 + 10'000.0);
}

// --- HostGpuSet --------------------------------------------------------------

TEST(HostGpuSet, NamingPreservesSingleDeviceContractAndNumbersMulti) {
  EventQueue q;
  HostGpuSet one(q, {HostGpuSpec{}}, /*private_caches=*/false);
  EXPECT_EQ(one.count(), 1u);
  EXPECT_EQ(one.device(0).name(), "hostGPU");
  EXPECT_FALSE(one.has_private_caches());

  HostGpuSet two(q, {HostGpuSpec{}, HostGpuSpec{}}, /*private_caches=*/false);
  EXPECT_EQ(two.count(), 2u);
  EXPECT_EQ(two.device(0).name(), "hostGPU0");
  EXPECT_EQ(two.device(1).name(), "hostGPU1");
  // Multi-device sets always shard the launch cache per device.
  EXPECT_TRUE(two.has_private_caches());
  EXPECT_GT(two.resident_bytes(), one.resident_bytes());
}

TEST(HostGpuSet, RelativeSpeedsRankHeterogeneousMixes) {
  EventQueue q;
  HostGpuSpec fast;  // quadro4000 default
  HostGpuSpec slow;
  slow.arch = make_tegrak1();
  HostGpuSet set(q, {fast, slow}, false);
  const auto speeds = set.relative_speeds();
  ASSERT_EQ(speeds.size(), 2u);
  EXPECT_GT(speeds[0], 0.0);
  EXPECT_GT(speeds[1], 0.0);
  EXPECT_NE(speeds[0], speeds[1]);

  // Affinity placement then leans toward the faster device with equal
  // weights: the device with more VPs must be the faster one.
  const auto a = initial_placement(PlacementPolicy::kAffinity,
                                   std::vector<std::uint64_t>(6, 7), speeds);
  std::size_t on[2] = {0, 0};
  for (const auto d : a) ++on[d];
  const std::size_t faster = speeds[0] > speeds[1] ? 0 : 1;
  EXPECT_GT(on[faster], on[1 - faster]);
}

// --- host_gpus spec parsing --------------------------------------------------

TEST(HostGpusSpec, ParsesCountsAndHeterogeneousMixes) {
  EXPECT_TRUE(run::parse_host_gpus("").empty());

  const auto four = run::parse_host_gpus("quadro4000*4");
  ASSERT_EQ(four.size(), 4u);
  for (const auto& d : four) EXPECT_EQ(d.arch.name, "Quadro 4000");

  const auto mix = run::parse_host_gpus("quadro4000*2,gridk520,tegrak1");
  ASSERT_EQ(mix.size(), 4u);
  EXPECT_EQ(mix[0].arch.name, mix[1].arch.name);
  EXPECT_NE(mix[2].arch.name, mix[0].arch.name);
  EXPECT_NE(mix[3].arch.name, mix[2].arch.name);
}

TEST(HostGpusSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(run::parse_host_gpus("voodoo2"), ContractError);       // unknown
  EXPECT_THROW(run::parse_host_gpus("quadro4000*0"), ContractError);  // zero
  EXPECT_THROW(run::parse_host_gpus("quadro4000*x"), ContractError);  // NaN
  EXPECT_THROW(run::parse_host_gpus("quadro4000,"), ContractError);   // empty
}

// --- scenario integration ----------------------------------------------------

ScenarioConfig mg_config(std::size_t devices) {
  ScenarioConfig cfg;
  cfg.backend = Backend::kSigmaVp;
  cfg.mode = ExecMode::kAnalytic;
  cfg.gpu_mem_bytes = 16ull * 1024 * 1024;
  HostGpuSpec spec;
  spec.mem_bytes = cfg.gpu_mem_bytes;
  for (std::size_t i = 0; i < devices; ++i) cfg.host_gpus.push_back(spec);
  return cfg;
}

// A skewed 16-VP fleet: every 4th VP is heavy, so round-robin at 4 devices
// stacks all four heavy VPs onto device 0 while LPT spreads them.
std::vector<AppInstance> skewed_apps(int heavy_iters = 10, int light_iters = 2) {
  static const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");
  std::vector<AppInstance> apps;
  for (int i = 0; i < 16; ++i) {
    workloads::AppTraits t = w.traits;
    t.iterations = (i % 4 == 0) ? heavy_iters : light_iters;
    apps.push_back(AppInstance{&w, w.test_n, t});
    apps.back().jitter = static_cast<std::uint64_t>(i);
  }
  return apps;
}

TEST(MultiGpu, ValidatesConfiguration) {
  const auto apps = skewed_apps();

  ScenarioConfig bad_backend = mg_config(2);
  bad_backend.backend = Backend::kEmulationOnVp;
  EXPECT_THROW(run_scenario(bad_backend, apps), ContractError);

  ScenarioConfig bad_fault = mg_config(2);
  bad_fault.fault.device_reset_at_us = {1000.0};
  EXPECT_THROW(run_scenario(bad_fault, apps), ContractError);
}

TEST(MultiGpu, SingleDeclaredDeviceMatchesLegacyByteForByte) {
  const auto apps = skewed_apps(4, 2);

  ScenarioConfig legacy = mg_config(0);
  ScenarioConfig declared = mg_config(1);

  auto probe = [&](const ScenarioConfig& cfg) {
    run::SweepResult one;
    one.jobs.push_back(run::SweepJobResult{"probe", "multigpu", run_scenario(cfg, apps)});
    one.workers = 1;
    one.wall_ms = 0.0;
    return run::sweep_to_json(one, "multigpu-probe");
  };

  const std::string a = probe(legacy);
  const std::string b = probe(declared);
  EXPECT_EQ(a, b);
  // Neither run turns on the multi-GPU observables or the JSON block.
  EXPECT_EQ(run_scenario(declared, apps).gpus.devices, 0u);
  EXPECT_EQ(a.find("\"host_gpus\""), std::string::npos);
}

TEST(MultiGpu, SpeedupIsMonotoneOnDispatchBoundFleet) {
  auto apps = skewed_apps();

  auto run_with = [&](std::size_t devices) {
    ScenarioConfig cfg = mg_config(devices);
    cfg.dispatch.interleave = true;
    cfg.async_launches = true;
    return run_scenario(cfg, apps);
  };

  const ScenarioResult r1 = run_with(1);
  const ScenarioResult r2 = run_with(2);
  const ScenarioResult r4 = run_with(4);

  EXPECT_GE(r1.makespan_us, r2.makespan_us);
  EXPECT_GE(r2.makespan_us, r4.makespan_us);
  EXPECT_LT(r4.makespan_us, r1.makespan_us);  // strictly faster at 4 devices

  ASSERT_EQ(r4.gpus.devices, 4u);
  ASSERT_EQ(r4.gpus.per_device.size(), 4u);
  std::uint32_t vps = 0;
  std::uint64_t jobs = 0;
  for (const auto& d : r4.gpus.per_device) {
    vps += d.vps;
    jobs += d.jobs;
    EXPECT_GT(d.vps, 0u);  // LPT spread the fleet across every device
    EXPECT_GT(d.jobs, 0u);
  }
  EXPECT_EQ(vps, 16u);
  EXPECT_EQ(jobs, r4.jobs_dispatched);
  EXPECT_EQ(r4.jobs_dispatched, r1.jobs_dispatched);  // same work, spread out
}

TEST(MultiGpu, AffinityBeatsRoundRobinOnSkewedFleet) {
  const auto apps = skewed_apps();

  auto run_with = [&](PlacementPolicy policy) {
    ScenarioConfig cfg = mg_config(4);
    cfg.dispatch.interleave = true;
    cfg.async_launches = true;
    cfg.placement.policy = policy;
    return run_scenario(cfg, apps);
  };

  const ScenarioResult rr = run_with(PlacementPolicy::kRoundRobin);
  const ScenarioResult aff = run_with(PlacementPolicy::kAffinity);
  EXPECT_LT(aff.makespan_us, rr.makespan_us);

  // Round-robin stacked the heavy VPs: its busiest device dispatched more
  // jobs than affinity's busiest device.
  auto max_jobs = [](const ScenarioResult& r) {
    std::uint64_t m = 0;
    for (const auto& d : r.gpus.per_device) m = std::max(m, d.jobs);
    return m;
  };
  EXPECT_GT(max_jobs(rr), max_jobs(aff));
}

TEST(MultiGpu, IdleVpsMigrateOffBackloggedDevicesDeterministically) {
  // Equal per-VP weights make the initial LPT assignment round-robin-like,
  // but VPs 0 and 4 (both landing on device 0 of 4) are heavy at runtime:
  // once the light VPs drain, the heavy ones find idle lanes elsewhere and
  // the affinity re-scheduler must move at least one of them.
  static const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");
  std::vector<AppInstance> apps;
  for (int i = 0; i < 8; ++i) {
    workloads::AppTraits t = w.traits;
    t.iterations = (i == 0 || i == 4) ? 16 : 2;
    apps.push_back(AppInstance{&w, w.test_n, t});
  }

  ScenarioConfig cfg = mg_config(4);
  cfg.dispatch.interleave = true;  // synchronous launches: VP idle per submit

  const ScenarioResult first = run_scenario(cfg, apps);
  EXPECT_GE(first.gpus.migrations, 1u);
  EXPECT_GT(first.gpus.migrated_bytes, 0u);

  const ScenarioResult second = run_scenario(cfg, apps);
  EXPECT_EQ(first.makespan_us, second.makespan_us);
  EXPECT_EQ(first.gpus, second.gpus);
  EXPECT_EQ(first.app_done_us, second.app_done_us);

  // Turning migration off keeps the counters inert.
  ScenarioConfig pinned = cfg;
  pinned.placement.allow_migration = false;
  const ScenarioResult still = run_scenario(pinned, apps);
  EXPECT_EQ(still.gpus.migrations, 0u);
  EXPECT_EQ(still.gpus.migrated_bytes, 0u);
}

TEST(MultiGpu, JsonCarriesHostGpusBlock) {
  ScenarioConfig cfg = mg_config(2);
  cfg.host_gpus[1].arch = make_gridk520();
  const ScenarioResult r = run_scenario(cfg, skewed_apps(4, 2));
  ASSERT_EQ(r.gpus.devices, 2u);

  run::SweepResult one;
  one.jobs.push_back(run::SweepJobResult{"hetero", "multigpu", r});
  one.workers = 1;
  one.wall_ms = 0.0;
  const std::string json = run::sweep_to_json(one, "multigpu-json");
  EXPECT_NE(json.find("\"host_gpus\": {\"devices\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"per_device\""), std::string::npos);
  EXPECT_NE(json.find("\"migrations\""), std::string::npos);
  EXPECT_NE(json.find("Quadro 4000"), std::string::npos);
  EXPECT_NE(json.find("Grid K520"), std::string::npos);
}

TEST(MultiGpu, ScenarioResultCodecRoundTripsMultiGpuStats) {
  ScenarioConfig cfg = mg_config(2);
  const ScenarioResult r = run_scenario(cfg, skewed_apps(6, 2));
  ASSERT_EQ(r.gpus.devices, 2u);

  snapshot::Writer w;
  snapshot::save_scenario_result(w, r);
  snapshot::Reader reader(w.buffer());
  const ScenarioResult back = snapshot::load_scenario_result(reader);
  EXPECT_EQ(back.gpus, r.gpus);
  EXPECT_EQ(back.makespan_us, r.makespan_us);
}

// --- determinism across workers and shards -----------------------------------

std::vector<run::SweepJob> make_multigpu_jobs() {
  std::vector<run::SweepJob> jobs;

  run::SweepJob quad;
  quad.name = "quad-affinity";
  quad.group = "multigpu";
  quad.config = mg_config(4);
  quad.config.dispatch.interleave = true;
  quad.config.async_launches = true;
  quad.apps = skewed_apps();
  jobs.push_back(quad);

  run::SweepJob hetero;
  hetero.name = "hetero-mix";
  hetero.group = "multigpu";
  hetero.config = mg_config(4);
  hetero.config.host_gpus[2].arch = make_gridk520();
  hetero.config.host_gpus[3].arch = make_gridk520();
  hetero.config.dispatch.interleave = true;
  hetero.apps = skewed_apps(6, 2);
  jobs.push_back(hetero);

  // Sharded fleet of multi-GPU domains: two shards, two devices each.
  run::SweepJob sharded;
  sharded.name = "sharded-multigpu";
  sharded.group = "multigpu";
  sharded.config = mg_config(2);
  sharded.config.fleet.domains = 2;
  sharded.config.dispatch.interleave = true;
  sharded.apps = skewed_apps(6, 2);
  jobs.push_back(sharded);

  return jobs;
}

TEST(MultiGpu, BenchJsonByteIdenticalAcrossWorkersAndShards) {
  const auto jobs = make_multigpu_jobs();

  auto canonical = [](run::SweepResult r) {
    r.wall_ms = 0.0;
    r.workers = 1;
    return run::sweep_to_json(r, "multigpu-battery");
  };

  run::set_fleet_shards(1);
  const run::SweepResult base = run::SweepRunner(1).run(jobs);
  const std::string base_json = canonical(base);
  ASSERT_NE(base_json.find("\"host_gpus\""), std::string::npos);

  for (const std::size_t shards : {1u, 2u}) {
    for (const std::size_t workers : {1u, 4u}) {
      run::set_fleet_shards(shards);
      const run::SweepResult got = run::SweepRunner(workers).run(jobs);
      EXPECT_EQ(canonical(got), base_json)
          << "multi-GPU JSON diverged at shards=" << shards << " workers=" << workers;
    }
  }
  run::set_fleet_shards(1);
}

// --- captures, checkpoint, resume --------------------------------------------

TEST(MultiGpu, CapturesReplayAcrossDeviceLanes) {
  // Sharded multi-GPU domains exercise the multi-lane dispatcher capture
  // layout; a replay must verify and a tampered digest must be caught.
  ScenarioConfig cfg = mg_config(2);
  cfg.fleet.domains = 2;
  cfg.dispatch.interleave = true;
  const auto apps = skewed_apps(6, 2);

  CaptureOptions cap;
  cap.every_us = 5000.0;
  std::vector<FleetCapture> captures;
  const ScenarioResult first = run_scenario(cfg, apps, cap, &captures);
  ASSERT_GT(captures.size(), 1u);

  CaptureOptions verify = cap;
  verify.expect = captures;
  std::vector<FleetCapture> replayed;
  const ScenarioResult second = run_scenario(cfg, apps, verify, &replayed);
  EXPECT_EQ(replayed.size(), captures.size());
  EXPECT_EQ(first.makespan_us, second.makespan_us);
  EXPECT_EQ(first.gpus, second.gpus);

  CaptureOptions tampered = cap;
  tampered.expect = captures;
  tampered.expect[1].digest ^= 0x1;
  EXPECT_THROW(run_scenario(cfg, apps, tampered, nullptr), snapshot::SnapshotError);
}

TEST(MultiGpu, CheckpointResumePreservesDeviceAssignments) {
  const auto jobs = make_multigpu_jobs();
  const std::string dir = "test_multigpu_ckpt";
  std::filesystem::remove_all(dir);

  run::SweepSnapshotOptions snap;
  snap.dir = dir;
  snap.every_us = 5000.0;

  run::SweepResumeInfo cold_info;
  run::set_fleet_shards(1);
  const run::SweepResult cold = run::SweepRunner(2).run(jobs, snap, &cold_info);
  EXPECT_TRUE(cold_info.resumed_from.empty());

  run::SweepResumeInfo warm_info;
  const run::SweepResult warm = run::SweepRunner(2).run(jobs, snap, &warm_info);
  EXPECT_FALSE(warm_info.resumed_from.empty());
  EXPECT_EQ(warm_info.jobs_resumed, jobs.size());

  ASSERT_EQ(cold.jobs.size(), warm.jobs.size());
  for (std::size_t i = 0; i < cold.jobs.size(); ++i) {
    EXPECT_EQ(cold.jobs[i].result.gpus, warm.jobs[i].result.gpus) << cold.jobs[i].name;
    EXPECT_EQ(cold.jobs[i].result.makespan_us, warm.jobs[i].result.makespan_us);
    EXPECT_EQ(cold.jobs[i].result.app_done_us, warm.jobs[i].result.app_done_us);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sigvp
