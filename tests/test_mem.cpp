#include <gtest/gtest.h>

#include "mem/address_space.hpp"
#include "mem/allocator.hpp"
#include "util/check.hpp"

namespace sigvp {
namespace {

TEST(AddressSpace, TypedReadWriteRoundTrip) {
  AddressSpace mem(1024, "m");
  mem.write<double>(16, 3.5);
  mem.write<std::int32_t>(24, -7);
  mem.write<std::uint8_t>(28, 200);
  EXPECT_DOUBLE_EQ(mem.read<double>(16), 3.5);
  EXPECT_EQ(mem.read<std::int32_t>(24), -7);
  EXPECT_EQ(mem.read<std::uint8_t>(28), 200);
}

TEST(AddressSpace, BoundsChecked) {
  AddressSpace mem(64, "m");
  EXPECT_THROW(mem.read<double>(60), ContractError);
  EXPECT_THROW(mem.write<double>(64, 1.0), ContractError);
  EXPECT_NO_THROW(mem.write<double>(56, 1.0));
  // Overflowing address wraps must be caught too.
  EXPECT_THROW(mem.read<std::uint8_t>(~0ull), ContractError);
}

TEST(AddressSpace, BulkCopies) {
  AddressSpace mem(256, "m");
  const std::uint8_t src[4] = {1, 2, 3, 4};
  mem.copy_in(10, src, 4);
  std::uint8_t dst[4] = {};
  mem.copy_out(dst, 10, 4);
  EXPECT_EQ(dst[3], 4);
  mem.copy_within(100, 10, 4);
  EXPECT_EQ(mem.read<std::uint8_t>(103), 4);
  mem.fill(10, 9, 4);
  EXPECT_EQ(mem.read<std::uint8_t>(12), 9);
  EXPECT_THROW(mem.copy_in(254, src, 4), ContractError);
}

TEST(AddressSpace, OverlappingCopyWithinIsSafe) {
  AddressSpace mem(64, "m");
  for (std::uint8_t i = 0; i < 8; ++i) mem.write<std::uint8_t>(i, i);
  mem.copy_within(2, 0, 6);  // overlapping forward move
  EXPECT_EQ(mem.read<std::uint8_t>(2), 0);
  EXPECT_EQ(mem.read<std::uint8_t>(7), 5);
}

TEST(Allocator, AllocatesAlignedDistinctBlocks) {
  FreeListAllocator a(4096, 1 << 20);
  const auto p1 = a.allocate(100, 256);
  const auto p2 = a.allocate(100, 256);
  ASSERT_TRUE(p1 && p2);
  EXPECT_NE(*p1, *p2);
  EXPECT_EQ(*p1 % 256, 0u);
  EXPECT_EQ(*p2 % 256, 0u);
  EXPECT_EQ(a.bytes_allocated(), 200u);
  EXPECT_EQ(a.live_blocks(), 2u);
}

TEST(Allocator, FreeMergesNeighbors) {
  FreeListAllocator a(0, 4096);
  const auto p1 = a.allocate(512, 1);
  const auto p2 = a.allocate(512, 1);
  const auto p3 = a.allocate(512, 1);
  ASSERT_TRUE(p1 && p2 && p3);
  a.free(*p1);
  a.free(*p3);
  EXPECT_GE(a.free_ranges(), 2u);
  a.free(*p2);
  // Everything merged back into one range.
  EXPECT_EQ(a.free_ranges(), 1u);
  const auto big = a.allocate(4096, 1);
  EXPECT_TRUE(big.has_value());
}

TEST(Allocator, ExhaustionReturnsNullopt) {
  FreeListAllocator a(0, 1024);
  EXPECT_FALSE(a.allocate(2048).has_value());
  const auto p = a.allocate(512, 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(a.allocate(1024, 1).has_value());
}

TEST(Allocator, DoubleFreeAndForeignFreeThrow) {
  FreeListAllocator a(0, 4096);
  const auto p = a.allocate(64, 1);
  ASSERT_TRUE(p.has_value());
  a.free(*p);
  EXPECT_THROW(a.free(*p), ContractError);
  EXPECT_THROW(a.free(12345), ContractError);
}

TEST(Allocator, ReusesFreedSpace) {
  FreeListAllocator a(0, 1024);
  const auto p1 = a.allocate(1024, 1);
  ASSERT_TRUE(p1.has_value());
  a.free(*p1);
  const auto p2 = a.allocate(1024, 1);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(*p1, *p2);
}

TEST(Allocator, FirstFitSkipsTooSmallHoles) {
  FreeListAllocator a(0, 4096);
  const auto p1 = a.allocate(128, 1);
  const auto p2 = a.allocate(128, 1);
  ASSERT_TRUE(p1 && p2);
  a.free(*p1);  // 128-byte hole at the front
  const auto p3 = a.allocate(512, 1);
  ASSERT_TRUE(p3.has_value());
  EXPECT_GT(*p3, *p2);  // hole skipped
  const auto p4 = a.allocate(64, 1);
  ASSERT_TRUE(p4.has_value());
  EXPECT_EQ(*p4, *p1);  // hole reused for a fitting request
}

TEST(Allocator, RejectsBadArguments) {
  FreeListAllocator a(0, 1024);
  EXPECT_THROW(a.allocate(0), ContractError);
  EXPECT_THROW(a.allocate(16, 3), ContractError);  // non-power-of-two alignment
}

TEST(MemChunk, EndAndEquality) {
  const MemChunk c{100, 50};
  EXPECT_EQ(c.end(), 150u);
  EXPECT_EQ(c, (MemChunk{100, 50}));
  EXPECT_NE(c, (MemChunk{100, 51}));
}

}  // namespace
}  // namespace sigvp
