#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fault/fault_plan.hpp"
#include "ipc/ipc_manager.hpp"
#include "util/check.hpp"

namespace sigvp {
namespace {

// -- Retransmission backoff (watchdog timeout curve) -------------------------

TEST(RetransmitBackoff, MatchesPowTrajectoryBelowTheCap) {
  const RecoveryConfig r;  // 600 us, x2, capped at 60 ms
  for (std::uint32_t attempts = 1; attempts <= 5; ++attempts) {
    EXPECT_DOUBLE_EQ(retransmit_backoff(r, attempts),
                     r.ack_timeout_us * std::pow(r.backoff_mult, attempts - 1))
        << "attempts=" << attempts;
  }
}

TEST(RetransmitBackoff, ZeroAttemptsTreatedAsFirst) {
  const RecoveryConfig r;
  EXPECT_DOUBLE_EQ(retransmit_backoff(r, 0), r.ack_timeout_us);
}

TEST(RetransmitBackoff, MonotoneNondecreasingUpToTheCap) {
  const RecoveryConfig r;
  double prev = 0.0;
  for (std::uint32_t attempts = 1; attempts <= 64; ++attempts) {
    const double d = retransmit_backoff(r, attempts);
    EXPECT_GE(d, prev) << "attempts=" << attempts;
    EXPECT_LE(d, r.max_backoff_us) << "attempts=" << attempts;
    prev = d;
  }
}

TEST(RetransmitBackoff, ClampsExactlyAtMaxBackoff) {
  RecoveryConfig r;
  r.ack_timeout_us = 600.0;
  r.backoff_mult = 2.0;
  r.max_backoff_us = 60000.0;
  // 600 * 2^7 = 76800 > 60000: attempt 8 is the first clamped one.
  EXPECT_LT(retransmit_backoff(r, 7), r.max_backoff_us);
  EXPECT_DOUBLE_EQ(retransmit_backoff(r, 8), r.max_backoff_us);
  EXPECT_DOUBLE_EQ(retransmit_backoff(r, 9), r.max_backoff_us);
}

TEST(RetransmitBackoff, FiniteAtAbsurdAttemptCounts) {
  // std::pow(2.0, 10000) is inf; the saturating multiply loop must not be.
  const RecoveryConfig r;
  const double d = retransmit_backoff(r, 10000);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_DOUBLE_EQ(d, r.max_backoff_us);
  EXPECT_DOUBLE_EQ(retransmit_backoff(r, 0xFFFFFFFFu), r.max_backoff_us);
}

TEST(RetransmitBackoff, CapBelowFirstTimeoutStillClamps) {
  RecoveryConfig r;
  r.ack_timeout_us = 600.0;
  r.max_backoff_us = 100.0;  // pathological config: cap under the base timeout
  EXPECT_DOUBLE_EQ(retransmit_backoff(r, 1), 100.0);
  EXPECT_DOUBLE_EQ(retransmit_backoff(r, 50), 100.0);
}

TEST(IpcCostModel, MessageCostHasPayloadTerm) {
  const IpcCostModel shm = IpcCostModel::shared_memory();
  EXPECT_DOUBLE_EQ(shm.message_cost(0), 30.0);
  // 2.5 GB/s => 1 MiB ≈ 419 µs of payload time.
  EXPECT_NEAR(shm.message_cost(1 << 20), 30.0 + (1 << 20) / 2.5e3, 1e-6);
}

TEST(IpcCostModel, SocketCostsMoreThanSharedMemory) {
  const IpcCostModel shm = IpcCostModel::shared_memory();
  const IpcCostModel sock = IpcCostModel::socket();
  EXPECT_GT(sock.message_cost(0), shm.message_cost(0));
  EXPECT_GT(sock.message_cost(1 << 20), shm.message_cost(1 << 20));
}

TEST(Ipc, DeliversJobAfterTransportDelay) {
  EventQueue q;
  IpcManager ipc(q, IpcCostModel::shared_memory());
  SimTime delivered_at = -1.0;
  ipc.set_sink([&](Job) { delivered_at = q.now(); });
  const auto vp = ipc.register_vp("vp0");

  Job job;
  job.kind = JobKind::kKernel;
  ipc.send_job(vp, std::move(job), 0);
  q.run();
  EXPECT_DOUBLE_EQ(delivered_at, 30.0);
  EXPECT_EQ(ipc.messages_sent(), 1u);
}

TEST(Ipc, PayloadBytesSlowTheRequest) {
  EventQueue q;
  IpcManager ipc(q, IpcCostModel::shared_memory());
  SimTime delivered_at = -1.0;
  ipc.set_sink([&](Job) { delivered_at = q.now(); });
  const auto vp = ipc.register_vp("vp0");
  Job job;
  job.kind = JobKind::kMemcpyH2D;
  job.bytes = 1 << 20;
  ipc.send_job(vp, std::move(job), 1 << 20);
  q.run();
  EXPECT_NEAR(delivered_at, 30.0 + (1 << 20) / 2.5e3, 1e-6);
}

TEST(Ipc, ResponsePathChargesAControlMessage) {
  EventQueue q;
  IpcManager ipc(q, IpcCostModel::shared_memory());
  std::vector<Job> inbox;
  ipc.set_sink([&](Job j) { inbox.push_back(std::move(j)); });
  const auto vp = ipc.register_vp("vp0");

  SimTime completed_at = -1.0;
  Job job;
  job.kind = JobKind::kKernel;
  job.on_complete = [&](SimTime end, const KernelExecStats*) { completed_at = end; };
  ipc.send_job(vp, std::move(job), 0);
  q.run();
  ASSERT_EQ(inbox.size(), 1u);

  // Host finishes the job at t=100; the VP should see it at 100 + 30.
  inbox[0].on_complete(100.0, nullptr);
  q.run();
  EXPECT_DOUBLE_EQ(completed_at, 130.0);
  EXPECT_EQ(ipc.messages_sent(), 2u);
}

TEST(Ipc, VpControlHoldsAndReleasesNotifications) {
  EventQueue q;
  IpcManager ipc(q, IpcCostModel::shared_memory());
  std::vector<Job> inbox;
  ipc.set_sink([&](Job j) { inbox.push_back(std::move(j)); });
  const auto vp = ipc.register_vp("vp0");

  bool notified = false;
  Job job;
  job.kind = JobKind::kKernel;
  job.on_complete = [&](SimTime, const KernelExecStats*) { notified = true; };
  ipc.send_job(vp, std::move(job), 0);
  q.run();
  ASSERT_EQ(inbox.size(), 1u);

  // Stop the VP before the completion arrives: notification must be held.
  ipc.stop_vp(vp);
  EXPECT_TRUE(ipc.is_stopped(vp));
  inbox[0].on_complete(50.0, nullptr);
  q.run();
  EXPECT_FALSE(notified);

  // Resuming releases the held notification immediately.
  ipc.resume_vp(vp);
  EXPECT_TRUE(notified);
  EXPECT_FALSE(ipc.is_stopped(vp));
}

TEST(Ipc, KernelStatsSurviveTheResponsePath) {
  EventQueue q;
  IpcManager ipc(q, IpcCostModel::shared_memory());
  std::vector<Job> inbox;
  ipc.set_sink([&](Job j) { inbox.push_back(std::move(j)); });
  const auto vp = ipc.register_vp("vp0");

  ClassCounts seen;
  Job job;
  job.kind = JobKind::kKernel;
  job.on_complete = [&](SimTime, const KernelExecStats* stats) {
    ASSERT_NE(stats, nullptr);
    seen = stats->sigma;
  };
  ipc.send_job(vp, std::move(job), 0);
  q.run();

  KernelExecStats stats;
  stats.sigma[InstrClass::kFp64] = 777;
  inbox[0].on_complete(10.0, &stats);  // stats is stack-local: must be copied
  q.run();
  EXPECT_EQ(seen[InstrClass::kFp64], 777u);
}

TEST(Ipc, JobsGetUniqueIdsAndVpTag) {
  EventQueue q;
  IpcManager ipc(q, IpcCostModel::shared_memory());
  std::vector<Job> inbox;
  ipc.set_sink([&](Job j) { inbox.push_back(std::move(j)); });
  const auto vp0 = ipc.register_vp("vp0");
  const auto vp1 = ipc.register_vp("vp1");
  ipc.send_job(vp0, Job{}, 0);
  ipc.send_job(vp1, Job{}, 0);
  q.run();
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_NE(inbox[0].id, inbox[1].id);
  EXPECT_EQ(inbox[0].vp_id, vp0);
  EXPECT_EQ(inbox[1].vp_id, vp1);
}

TEST(Ipc, RejectsUnknownVp) {
  EventQueue q;
  IpcManager ipc(q, IpcCostModel::shared_memory());
  ipc.set_sink([](Job) {});
  EXPECT_THROW(ipc.send_job(5, Job{}, 0), ContractError);
  EXPECT_THROW(ipc.stop_vp(5), ContractError);
  EXPECT_THROW(ipc.resume_vp(5), ContractError);
}

TEST(Ipc, SendWithoutSinkThrows) {
  EventQueue q;
  IpcManager ipc(q, IpcCostModel::shared_memory());
  const auto vp = ipc.register_vp("vp0");
  EXPECT_THROW(ipc.send_job(vp, Job{}, 0), ContractError);
}

}  // namespace
}  // namespace sigvp
