// Edge cases of the Kernel Coalescing window: the expiry timer firing at
// exactly enqueue_time + coalesce_window_us, eager-peer early dispatch well
// before the window, VP control (IpcManager::stop_vp) holding a completion
// without deadlocking the window-timer pump, and merge identity in the
// almost-identical-kernel regime (structural fingerprints vs per-VP scalar
// jitter).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ipc/ipc_manager.hpp"
#include "sched/dispatcher.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

constexpr std::uint64_t kMem = 256ull * 1024 * 1024;

struct Rig {
  EventQueue q;
  GpuDevice dev;
  Dispatcher disp;

  explicit Rig(DispatchConfig cfg, std::size_t vps)
      : dev(q, make_quadro4000(), kMem, "gpu"), disp(q, dev, zero_overhead(cfg)) {
    for (std::size_t i = 0; i < vps; ++i) disp.register_vp();
  }

  static DispatchConfig zero_overhead(DispatchConfig cfg) {
    cfg.dispatch_overhead_us = 0.0;
    return cfg;
  }
};

// A coalescing-eligible functional vectorAdd job with its own device
// buffers; deterministic inputs so repeated runs are time-identical.
Job va_job(Rig& rig, const workloads::Workload& w, std::uint32_t vp, std::uint64_t seq,
           SimTime* end_out) {
  const std::uint64_t n = 128;
  std::vector<std::uint64_t> addrs;
  for (const auto& spec : w.buffers(n)) addrs.push_back(rig.dev.malloc(spec.bytes));
  for (std::uint64_t i = 0; i < n; ++i) {
    rig.dev.memory().write<float>(addrs[0] + 4 * i, static_cast<float>(i));
    rig.dev.memory().write<float>(addrs[1] + 4 * i, 2.0f * static_cast<float>(i));
  }
  Job j;
  j.vp_id = vp;
  j.seq_in_vp = seq;
  j.kind = JobKind::kKernel;
  j.launch.request.kernel = &w.kernel;
  j.launch.request.dims = w.dims(n);
  j.launch.request.args = w.args(addrs, n);
  j.launch.request.mode = ExecMode::kFunctional;
  j.launch.coalesce = w.coalesce(n);
  j.on_complete = [end_out](SimTime end, const KernelExecStats*) {
    if (end_out) *end_out = end;
  };
  return j;
}

TEST(CoalescingWindow, ExpiryFiresExactlyAtDeadline) {
  const workloads::Workload w = workloads::make_vector_add();
  constexpr SimTime kWindow = 40.0;

  auto completion_time = [&](bool coalesce) {
    DispatchConfig cfg{false, coalesce};
    cfg.coalesce_window_us = kWindow;
    cfg.coalesce_eager_peers = 99;  // peers never trigger; only the timer can
    Rig rig(cfg, 1);
    SimTime end = -1.0;
    rig.disp.submit(va_job(rig, w, 0, 0, &end));
    rig.q.run();
    EXPECT_GE(end, 0.0);
    EXPECT_EQ(rig.disp.coalesced_groups(), 0u);  // dispatched alone either way
    return end;
  };

  const SimTime without_window = completion_time(false);
  const SimTime with_window = completion_time(true);
  // The lone eligible job is held for exactly the window — the expiry timer
  // fires at enqueue_time + coalesce_window_us, not an event-loop tick later.
  EXPECT_DOUBLE_EQ(with_window - without_window, kWindow);
}

TEST(CoalescingWindow, EagerPeersDispatchEarly) {
  const workloads::Workload w = workloads::make_vector_add();
  DispatchConfig cfg{false, true};
  cfg.coalesce_window_us = 1e6;  // a window nothing should ever wait out
  cfg.coalesce_eager_peers = 2;
  Rig rig(cfg, 3);

  SimTime ends[3] = {-1.0, -1.0, -1.0};
  rig.disp.submit(va_job(rig, w, 0, 0, &ends[0]));
  rig.disp.submit(va_job(rig, w, 1, 0, &ends[1]));  // 1 ready peer: still held
  rig.disp.submit(va_job(rig, w, 2, 0, &ends[2]));  // 2 ready peers: go
  rig.q.run();

  EXPECT_EQ(rig.disp.coalesced_groups(), 1u);
  EXPECT_EQ(rig.disp.coalesced_jobs(), 3u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_GE(ends[i], 0.0) << "vp " << i;
    // Early dispatch: completion long before the window could have expired.
    EXPECT_LT(ends[i], 1e5) << "vp " << i;
  }
}

// A coalescing-eligible camPipeline gain-stage job with per-VP scalar
// jitter: same kernel structure, f32 gain perturbed when `jitter` != 0.
Job cam_gain_job(Rig& rig, const workloads::Workload& cam, std::uint32_t vp,
                 std::uint64_t jitter, std::vector<std::uint64_t>* addrs_out) {
  const std::uint64_t n = 128;
  const workloads::PipelineStage& st = cam.stages.front();
  std::vector<std::uint64_t> addrs;
  for (const auto& spec : cam.buffers(n)) addrs.push_back(rig.dev.malloc(spec.bytes));
  for (std::uint64_t i = 0; i < n; ++i) {
    rig.dev.memory().write<float>(addrs[0] + 4 * i, static_cast<float>(i % 29));
  }
  Job j;
  j.vp_id = vp;
  j.seq_in_vp = 0;
  j.kind = JobKind::kKernel;
  j.launch.request.kernel = &st.kernel;
  j.launch.request.dims = st.dims(n);
  j.launch.request.args = st.args(addrs, n, jitter);
  j.launch.request.mode = ExecMode::kFunctional;
  j.launch.coalesce = st.coalesce(n);
  if (addrs_out) *addrs_out = std::move(addrs);
  return j;
}

TEST(CoalescingWindow, FingerprintEqualKernelsFromDistinctBuildsMerge) {
  // Two separately-built suites: pointer-distinct KernelIR instances with
  // identical structure, as when every VP builds its own kernel image.
  const auto suite_a = workloads::make_app_suite();
  const auto suite_b = workloads::make_app_suite();
  auto cam_of = [](const std::vector<workloads::Workload>& s) {
    for (const auto& w : s) {
      if (w.app == "camPipeline") return &w;
    }
    ADD_FAILURE() << "camPipeline missing from app suite";
    return &s.front();
  };
  const workloads::Workload& cam_a = *cam_of(suite_a);
  const workloads::Workload& cam_b = *cam_of(suite_b);
  ASSERT_NE(&cam_a.stages.front().kernel, &cam_b.stages.front().kernel);

  DispatchConfig cfg{false, true};
  cfg.coalesce_window_us = 1e6;  // only eager peers may trigger dispatch
  cfg.coalesce_eager_peers = 1;
  Rig rig(cfg, 2);
  std::vector<std::uint64_t> addrs_a, addrs_b;
  rig.disp.submit(cam_gain_job(rig, cam_a, 0, 0, &addrs_a));
  rig.disp.submit(cam_gain_job(rig, cam_b, 1, 0, &addrs_b));
  rig.q.run();

  // Canonical scalars + equal fingerprints: one merged group of both jobs.
  EXPECT_EQ(rig.disp.coalesced_groups(), 1u);
  EXPECT_EQ(rig.disp.coalesced_jobs(), 2u);

  // Each member's output landed in its own work buffer: work[i] = raw[i]*gain.
  for (const auto& addrs : {addrs_a, addrs_b}) {
    for (std::uint64_t i = 0; i < 128; ++i) {
      const float raw = static_cast<float>(i % 29);
      EXPECT_EQ(rig.dev.memory().read<float>(addrs[1] + 4 * i), raw * 0.75f)
          << "elem " << i;
    }
  }
}

TEST(CoalescingWindow, ScalarJitterBlocksMergingDespiteEqualFingerprints) {
  const auto suite = workloads::make_app_suite();
  const workloads::Workload* cam = nullptr;
  for (const auto& w : suite) {
    if (w.app == "camPipeline") cam = &w;
  }
  ASSERT_NE(cam, nullptr);

  DispatchConfig cfg{false, true};
  cfg.coalesce_window_us = 50.0;
  cfg.coalesce_eager_peers = 1;
  auto groups_with = [&](std::uint64_t j0, std::uint64_t j1) {
    Rig rig(cfg, 2);
    rig.disp.submit(cam_gain_job(rig, *cam, 0, j0, nullptr));
    rig.disp.submit(cam_gain_job(rig, *cam, 1, j1, nullptr));
    rig.q.run();
    EXPECT_EQ(rig.disp.jobs_dispatched(), 2u);
    return rig.disp.coalesced_groups();
  };

  EXPECT_EQ(groups_with(0, 0), 1u) << "canonical scalars must merge";
  EXPECT_EQ(groups_with(1001, 1001), 1u)
      << "identical jitter seeds give byte-equal scalars and must merge";
  // Distinct per-VP jitter: the almost-identical regime. Same structural
  // fingerprint, different f32 gain — merging would run VP1 with VP0's
  // parameters, so the coalescer must refuse, deterministically.
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(groups_with(1001, 1002), 0u) << "rep " << rep;
  }
}

TEST(CoalescingWindow, StoppedVpHoldsCompletionWithoutDeadlock) {
  const workloads::Workload w = workloads::make_vector_add();
  DispatchConfig cfg{false, true};
  cfg.coalesce_window_us = 50.0;
  cfg.coalesce_eager_peers = 99;  // force the window-timer path
  Rig rig(cfg, 1);

  IpcManager ipc(rig.q, IpcCostModel::shared_memory());
  ipc.set_sink([&rig](Job job) { rig.disp.submit(std::move(job)); });
  const std::uint32_t vp = ipc.register_vp("vp0");

  SimTime end = -1.0;
  ipc.stop_vp(vp);
  EXPECT_TRUE(ipc.is_stopped(vp));
  ipc.send_job(vp, va_job(rig, w, vp, 0, &end), 0);

  // The event queue must drain: the window timer fires once, the job
  // dispatches and completes on the device, and the completion notification
  // parks in the IPC manager — a stopped VP must not wedge the timer pump.
  rig.q.run();
  EXPECT_TRUE(rig.disp.idle());
  EXPECT_EQ(rig.disp.jobs_dispatched(), 1u);
  EXPECT_EQ(rig.q.pending(), 0u);
  EXPECT_LT(end, 0.0) << "completion leaked through a stopped VP";

  // Resuming delivers the held notification immediately.
  ipc.resume_vp(vp);
  EXPECT_FALSE(ipc.is_stopped(vp));
  EXPECT_GE(end, 0.0);
}

}  // namespace
}  // namespace sigvp
