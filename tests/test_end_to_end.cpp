// End-to-end property tests across the whole stack.

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "interp/interpreter.hpp"
#include "mem/allocator.hpp"
#include "util/check.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

using workloads::Workload;

TEST(EndToEnd, FunctionalScenarioRunsRealKernelsOnEveryBackend) {
  // The same app instance, functional mode, on all four backends: every
  // backend must complete, and the relative timing ordering must hold even
  // at this tiny size.
  const Workload w = workloads::make_vector_add();
  workloads::AppTraits traits;
  traits.iterations = 3;
  traits.launches_per_iter = 2;
  traits.noncuda_guest_instrs = 1000;

  std::map<Backend, SimTime> times;
  for (Backend backend : {Backend::kNativeGpu, Backend::kEmulationHostCpu,
                          Backend::kEmulationOnVp, Backend::kSigmaVp}) {
    ScenarioConfig cfg;
    cfg.backend = backend;
    cfg.mode = ExecMode::kFunctional;
    AppInstance app{&w, 2048, traits};
    const ScenarioResult r = run_scenario(cfg, {app});
    EXPECT_GT(r.makespan_us, 0.0) << backend_name(backend);
    times[backend] = r.makespan_us;
  }
  EXPECT_LT(times[Backend::kNativeGpu], times[Backend::kSigmaVp]);
  EXPECT_LT(times[Backend::kEmulationHostCpu], times[Backend::kEmulationOnVp]);
}

TEST(EndToEnd, AsyncCascadeMatchesSyncResultsFunctionally) {
  // mergeSort-style cascade issued async vs sync must produce identical
  // simulated side effects (the kernels see the same per-VP order).
  const Workload w = workloads::make_vector_add();
  workloads::AppTraits traits;
  traits.iterations = 2;
  traits.launches_per_iter = 5;

  auto run = [&](bool async) {
    ScenarioConfig cfg;
    cfg.backend = Backend::kSigmaVp;
    cfg.mode = ExecMode::kFunctional;
    cfg.dispatch.interleave = true;
    cfg.async_launches = async;
    AppInstance app{&w, 1024, traits};
    return run_scenario(cfg, {app});
  };
  const ScenarioResult sync_r = run(false);
  const ScenarioResult async_r = run(true);
  EXPECT_EQ(sync_r.jobs_dispatched, async_r.jobs_dispatched);
  // Async submission amortizes the per-call round trips.
  EXPECT_LE(async_r.makespan_us, sync_r.makespan_us);
}

class ProfileSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProfileSweep, AnalyticProfileExactAtEverySize) {
  // The λ·µ identity must hold at sizes other than the canned test size —
  // including awkward non-power-of-two, non-block-multiple sizes.
  const Workload w = workloads::make_black_scholes();
  const std::uint64_t n = GetParam();

  AddressSpace mem(64ull << 20, "m");
  FreeListAllocator alloc(4096, mem.size() - 4096);
  std::vector<std::uint64_t> addrs;
  for (const auto& b : w.buffers(n)) addrs.push_back(*alloc.allocate(b.bytes));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::uint64_t off = 0; off + 4 <= 4 * n; off += 4) {
      mem.write<float>(addrs[i] + off, 1.0f);
    }
  }
  Interpreter interp;
  const DynamicProfile measured = interp.run(w.kernel, w.dims(n), w.args(addrs, n), mem);
  const DynamicProfile analytic = w.profile(n);
  EXPECT_EQ(measured.instr_counts, analytic.instr_counts) << "n=" << n;
  EXPECT_EQ(measured.sfu_instrs, analytic.sfu_instrs) << "n=" << n;
  EXPECT_EQ(measured.sqrt_instrs, analytic.sqrt_instrs) << "n=" << n;
  EXPECT_EQ(measured.global_load_bytes, analytic.global_load_bytes) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ProfileSweep,
                         ::testing::Values(1, 7, 255, 256, 257, 1000, 4096, 5000));

TEST(EndToEnd, CoalescedFleetProducesPerVpCorrectResultsThroughIpc) {
  // Full path: guest stacks → IPC → re-scheduler → coalescer → device →
  // responses, functional mode, with coalescing forced on. Every VP's data
  // must come back correct despite the merged execution.
  const Workload w = workloads::make_vector_add();
  workloads::AppTraits traits;
  traits.iterations = 2;
  traits.launches_per_iter = 1;
  traits.coalescable = true;

  ScenarioConfig cfg;
  cfg.backend = Backend::kSigmaVp;
  cfg.mode = ExecMode::kFunctional;
  cfg.dispatch.interleave = true;
  cfg.dispatch.coalesce = true;
  cfg.dispatch.coalesce_eager_peers = 3;
  // Setup copies serialize on the dispatcher service thread and skew the
  // VPs by several ms; a generous window lets the first round re-align.
  cfg.dispatch.coalesce_window_us = 20000.0;
  std::vector<AppInstance> apps;
  for (int i = 0; i < 4; ++i) apps.push_back(AppInstance{&w, 777, traits});
  const ScenarioResult r = run_scenario(cfg, apps);
  EXPECT_EQ(r.app_done_us.size(), 4u);
  EXPECT_GT(r.coalesced_groups, 0u);
}

TEST(EndToEnd, DeterministicAcrossRuns) {
  // The whole simulation is deterministic: two identical scenario runs give
  // bit-identical makespans and statistics.
  const Workload w = workloads::make_merge_sort();
  ScenarioConfig cfg;
  cfg.backend = Backend::kSigmaVp;
  cfg.mode = ExecMode::kAnalytic;
  cfg.dispatch.interleave = true;
  cfg.dispatch.coalesce = true;
  const auto a = run_scenario(cfg, replicate(w, 4096, 4));
  const auto b = run_scenario(cfg, replicate(w, 4096, 4));
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.jobs_dispatched, b.jobs_dispatched);
  EXPECT_EQ(a.coalesced_groups, b.coalesced_groups);
  EXPECT_EQ(a.gpu_dynamic_energy_j, b.gpu_dynamic_energy_j);
  EXPECT_EQ(a.app_done_us, b.app_done_us);
}

TEST(EndToEnd, EnergyConservationAcrossDispatchPolicies) {
  // Scheduling changes when kernels run, not what they execute: the GPU's
  // dynamic energy must be invariant across policies (without coalescing,
  // which legitimately removes per-launch work).
  const Workload w = workloads::make_black_scholes();
  auto energy = [&](bool interleave) {
    ScenarioConfig cfg;
    cfg.backend = Backend::kSigmaVp;
    cfg.mode = ExecMode::kAnalytic;
    cfg.dispatch.interleave = interleave;
    return run_scenario(cfg, replicate(w, 1u << 16, 4)).gpu_dynamic_energy_j;
  };
  EXPECT_DOUBLE_EQ(energy(false), energy(true));
}

}  // namespace
}  // namespace sigvp
