#include <gtest/gtest.h>

#include "interp/interpreter.hpp"
#include "ir/validate.hpp"
#include "mem/allocator.hpp"
#include "util/check.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

using workloads::Workload;

class WorkloadTest : public ::testing::TestWithParam<std::string> {
 protected:
  static const std::vector<Workload>& suite() {
    static const std::vector<Workload> s = workloads::make_suite();
    return s;
  }
  const Workload& workload() const { return workloads::find(suite(), GetParam()); }
};

TEST_P(WorkloadTest, KernelValidates) {
  const Workload& w = workload();
  EXPECT_NO_THROW(validate_kernel(w.kernel));
  EXPECT_GT(w.kernel.static_size(), 0u);
  EXPECT_EQ(w.kernel.name.empty(), false);
}

TEST_P(WorkloadTest, DimsCoverProblemSize) {
  const Workload& w = workload();
  for (std::uint64_t n : {w.test_n, w.default_n}) {
    const LaunchDims d = w.dims(n);
    EXPECT_GE(d.total_threads(), n / 512)  // loose lower bound (1 thread can own many elems)
        << w.app;
    EXPECT_GT(d.total_threads(), 0u);
  }
}

TEST_P(WorkloadTest, BuffersAndArgsConsistent) {
  const Workload& w = workload();
  const auto bufs = w.buffers(w.test_n);
  EXPECT_FALSE(bufs.empty());
  std::vector<std::uint64_t> addrs;
  std::uint64_t next = 4096;
  for (const auto& b : bufs) {
    EXPECT_GT(b.bytes, 0u) << w.app;
    addrs.push_back(next);
    next += (b.bytes + 255) / 256 * 256;
  }
  const KernelArgs args = w.args(addrs, w.test_n);
  EXPECT_GE(args.values.size(), w.kernel.num_params) << w.app;
}

TEST_P(WorkloadTest, FunctionalRunMatchesAnalyticProfile) {
  const Workload& w = workload();
  const std::uint64_t n = w.test_n;
  const auto bufs = w.buffers(n);

  AddressSpace mem(512ull * 1024 * 1024, "m");
  FreeListAllocator alloc(4096, mem.size() - 4096);
  std::vector<std::uint64_t> addrs;
  for (const auto& b : bufs) {
    const auto a = alloc.allocate(b.bytes);
    ASSERT_TRUE(a.has_value());
    addrs.push_back(*a);
  }
  // Fill inputs with small nonzero values so data-dependent kernels
  // (Mandelbrot escape test, mergeSort comparisons) see plausible data.
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    if (!bufs[i].is_input) continue;
    for (std::uint64_t off = 0; off + 4 <= bufs[i].bytes; off += 4) {
      mem.write<float>(addrs[i] + off, 0.5f);
    }
  }

  Interpreter interp;
  const DynamicProfile measured =
      interp.run(w.kernel, w.dims(n), w.args(addrs, n), mem);
  const DynamicProfile analytic = w.profile(n);

  ASSERT_EQ(analytic.block_visits.size(), w.kernel.blocks.size()) << w.app;
  if (w.exact_profile) {
    // The paper's λ·µ identity (Eq. 1), exact: instrumentation and the
    // analytic profile must agree block by block.
    for (std::size_t b = 0; b < analytic.block_visits.size(); ++b) {
      EXPECT_EQ(measured.block_visits[b], analytic.block_visits[b])
          << w.app << " block " << w.kernel.blocks[b].label;
    }
    EXPECT_EQ(measured.instr_counts, analytic.instr_counts) << w.app;
    EXPECT_EQ(measured.global_load_bytes, analytic.global_load_bytes) << w.app;
    EXPECT_EQ(measured.global_store_bytes, analytic.global_store_bytes) << w.app;
  } else {
    // Data-dependent kernels: the analytic profile is an expectation.
    const double m = static_cast<double>(measured.total_instrs());
    const double a = static_cast<double>(analytic.total_instrs());
    EXPECT_GT(m, 0.0);
    EXPECT_NEAR(m / a, 1.0, 0.35) << w.app;
  }
}

TEST_P(WorkloadTest, SigmaEqualsLambdaTimesMu) {
  // counts_from_visits reproduces the dynamic per-class counts (Eq. 1).
  const Workload& w = workload();
  const DynamicProfile p = w.profile(w.test_n);
  EXPECT_EQ(DynamicProfile::counts_from_visits(w.kernel, p.block_visits), p.instr_counts)
      << w.app;
}

TEST_P(WorkloadTest, BehaviorIsSane) {
  const Workload& w = workload();
  for (std::uint64_t n : {w.test_n, w.default_n}) {
    const MemoryBehavior b = w.behavior(n);
    EXPECT_GT(b.footprint_bytes, 0u) << w.app;
    EXPECT_GT(b.accesses, 0u) << w.app;
    EXPECT_GE(b.reuse_fraction, 0.0);
    EXPECT_LE(b.reuse_fraction, 1.0);
    EXPECT_GE(b.coalescing, 0.0);
    EXPECT_LE(b.coalescing, 1.0);
  }
}

TEST_P(WorkloadTest, ProfileScalesWithProblemSize) {
  const Workload& w = workload();
  const double small = static_cast<double>(w.profile(w.test_n).total_instrs());
  const double large = static_cast<double>(w.profile(w.default_n).total_instrs());
  EXPECT_GT(large, small) << w.app;
}

TEST_P(WorkloadTest, CoalesceInfoConsistentWithTraits) {
  const Workload& w = workload();
  if (!w.traits.coalescable) {
    SUCCEED();
    return;
  }
  ASSERT_TRUE(static_cast<bool>(w.coalesce)) << w.app;
  const cuda::CoalesceInfo c = w.coalesce(w.test_n);
  EXPECT_TRUE(c.eligible);
  EXPECT_FALSE(c.key.empty());
  EXPECT_EQ(c.elems, w.test_n);
  EXPECT_GT(c.block_x, 0u);
  const KernelArgs args = w.args(std::vector<std::uint64_t>(w.buffers(w.test_n).size(), 4096),
                                 w.test_n);
  EXPECT_LT(c.size_arg_index, args.values.size());
  for (const auto& buf : c.buffers) {
    EXPECT_LT(buf.arg_index, args.values.size());
    EXPECT_GT(buf.bytes_per_elem, 0u);
  }
}

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const auto& w : workloads::make_suite()) names.push_back(w.app);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadTest, ::testing::ValuesIn(all_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return n;
                         });

TEST(Suite, HasTwentyAppsWithUniqueNames) {
  const auto suite = workloads::make_suite();
  EXPECT_EQ(suite.size(), 20u);
  std::set<std::string> names;
  for (const auto& w : suite) names.insert(w.app);
  EXPECT_EQ(names.size(), suite.size());
  EXPECT_THROW(workloads::find(suite, "no-such-app"), ContractError);
}

TEST(Suite, PaperAppsPresent) {
  const auto suite = workloads::make_suite();
  for (const char* app :
       {"simpleGL", "Mandelbrot", "bicubicTexture", "recursiveGaussian", "MonteCarlo",
        "segmentationTreeThrust", "marchingCubes", "VolumeFiltering", "SobelFilter", "nbody",
        "smokeParticles", "mergeSort", "stereoDisparity", "convolutionSeparable", "dct8x8",
        "BlackScholes", "matrixMul"}) {
    EXPECT_NO_THROW(workloads::find(suite, app)) << app;
  }
}

TEST(Suite, OptimizationUnfriendlyAppsAreNotCoalescable) {
  // The paper lists these as not sped up by the two optimizations.
  const auto suite = workloads::make_suite();
  for (const char* app : {"convolutionSeparable", "dct8x8", "SobelFilter", "MonteCarlo",
                          "nbody", "smokeParticles"}) {
    EXPECT_FALSE(workloads::find(suite, app).traits.coalescable) << app;
  }
}

}  // namespace
}  // namespace sigvp
