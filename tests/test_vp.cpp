#include <gtest/gtest.h>

#include "core/calibration.hpp"
#include "cuda/runtime.hpp"
#include "ir/builder.hpp"
#include "sched/dispatcher.hpp"
#include "util/check.hpp"
#include "vp/emulation_driver.hpp"
#include "vp/native_driver.hpp"
#include "vp/sigmavp_driver.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

constexpr std::uint64_t kMem = 256ull * 1024 * 1024;

TEST(Processor, TimeIsInstructionsOverRate) {
  EventQueue q;
  Processor p(q, "cpu", 1e9);  // 1 GIPS
  SimTime end = -1;
  p.run_instrs(5e6, [&](SimTime t) { end = t; });  // 5 ms
  q.run();
  EXPECT_NEAR(end, 5000.0, 1e-6);
  EXPECT_NEAR(p.busy_total(), 5000.0, 1e-6);
}

TEST(Processor, WorkItemsSerialize) {
  EventQueue q;
  Processor p(q, "cpu", 1e9);
  SimTime e1 = 0, e2 = 0;
  p.run_instrs(1e6, [&](SimTime t) { e1 = t; });
  p.run_time(500.0, [&](SimTime t) { e2 = t; });
  q.run();
  EXPECT_NEAR(e1, 1000.0, 1e-9);
  EXPECT_NEAR(e2, 1500.0, 1e-9);
}

TEST(VpConfig, CalibrationRatiosFromTable1) {
  const HostCpuConfig host;
  const VpConfig vp;
  EXPECT_NEAR(vp.bt_slowdown, 32.86, 0.01);
  EXPECT_NEAR(host.effective_ips / vp.guest_ips(host), 32.86, 0.01);
  EXPECT_NEAR(vp.emul_isa_expansion, 1.247, 0.001);
}

TEST(Calibration, EmulationConfigsScaleWithBinaryTranslation) {
  Calibration calib;
  const EmulationConfig on_host = calib.emulation_on_host(false);
  const EmulationConfig on_vp = calib.emulation_on_vp(false);
  EXPECT_NEAR(on_host.cpu_ips / on_vp.cpu_ips, 32.86 * 1.247, 0.1);
  EXPECT_NEAR(on_vp.per_call_us / on_host.per_call_us, 32.86, 0.01);
  EXPECT_DOUBLE_EQ(on_host.overhead, 1.113);
}

TEST(EmulationDriver, FunctionalVectorAddProducesResults) {
  using namespace workloads;
  const Workload w = make_vector_add();
  EventQueue q;
  Processor cpu(q, "host", 1e10);
  Calibration calib;
  EmulationDriver drv(cpu, calib.emulation_on_host(true));
  cuda::Runtime rt(q, drv);

  const std::uint64_t n = 300;
  const std::uint64_t a = rt.malloc(4 * n), b = rt.malloc(4 * n), c = rt.malloc(4 * n);
  std::vector<float> ha(n), hb(n), hc(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ha[i] = static_cast<float>(i);
    hb[i] = 2.0f;
  }
  rt.memcpy_h2d(a, ha.data(), 4 * n);
  rt.memcpy_h2d(b, hb.data(), 4 * n);
  cuda::LaunchSpec spec;
  spec.request.kernel = &w.kernel;
  spec.request.dims = w.dims(n);
  spec.request.args = w.args({a, b, c}, n);
  spec.request.mode = ExecMode::kFunctional;
  const KernelExecStats stats = rt.launch(spec);
  rt.memcpy_d2h(hc.data(), c, 4 * n);
  for (std::uint64_t i = 0; i < n; i += 37) {
    EXPECT_FLOAT_EQ(hc[i], static_cast<float>(i) + 2.0f);
  }
  EXPECT_GT(stats.sigma.total(), 0u);
  EXPECT_GT(cpu.busy_total(), 0.0);
}

TEST(EmulationDriver, KernelTimeWeightsFpHigherThanInt) {
  EventQueue q;
  Processor cpu(q, "host", 1e10);
  Calibration calib;
  EmulationDriver drv(cpu, calib.emulation_on_host(false));
  ClassCounts ints, fps;
  ints[InstrClass::kInt] = 1000000;
  fps[InstrClass::kFp64] = 1000000;
  EXPECT_NEAR(drv.weighted_instrs(fps) / drv.weighted_instrs(ints), 3.6, 1e-9);
}

TEST(EmulationDriver, VpEmulationSlowerThanHostEmulation) {
  using namespace workloads;
  const Workload w = make_vector_add();
  const std::uint64_t n = 4096;
  Calibration calib;

  auto run = [&](EmulationConfig cfg) {
    EventQueue q;
    Processor cpu(q, "cpu", cfg.cpu_ips);
    EmulationDriver drv(cpu, cfg);
    cuda::Runtime rt(q, drv);
    const auto bufs = w.buffers(n);
    std::vector<std::uint64_t> addrs;
    for (const auto& s : bufs) addrs.push_back(rt.malloc(s.bytes));
    cuda::LaunchSpec spec;
    spec.request.kernel = &w.kernel;
    spec.request.dims = w.dims(n);
    spec.request.args = w.args(addrs, n);
    spec.request.mode = ExecMode::kAnalytic;
    spec.request.analytic_profile = w.profile(n);
    rt.launch(spec);
    rt.synchronize();
    return q.now();
  };

  const SimTime host = run(calib.emulation_on_host(false));
  const SimTime vp = run(calib.emulation_on_vp(false));
  // The kernel part scales by bt_slowdown × isa_expansion = 41.0; mallocs
  // and per-call costs scale by bt_slowdown only, pulling the ratio down.
  EXPECT_NEAR(vp / host, 32.86 * 1.247, 5.0);
}

TEST(SigmaVpDriver, RoundTripThroughIpcAndDispatcher) {
  using namespace workloads;
  const Workload w = make_vector_add();
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  Calibration calib;
  IpcManager ipc(q, calib.ipc);
  Dispatcher disp(q, dev, DispatchConfig{});
  ipc.set_sink([&](Job j) { disp.submit(std::move(j)); });
  Processor guest(q, "guest", calib.vp.guest_ips(calib.host_cpu));
  const auto id = ipc.register_vp("vp0");
  disp.register_vp();
  SigmaVpDriver drv(guest, ipc, dev, id, calib.vp);
  cuda::Runtime rt(q, drv);

  const std::uint64_t n = 300;
  const std::uint64_t a = rt.malloc(4 * n), b = rt.malloc(4 * n), c = rt.malloc(4 * n);
  std::vector<float> ha(n, 3.0f), hb(n, 4.0f), hc(n);
  rt.memcpy_h2d(a, ha.data(), 4 * n);
  rt.memcpy_h2d(b, hb.data(), 4 * n);
  cuda::LaunchSpec spec;
  spec.request.kernel = &w.kernel;
  spec.request.dims = w.dims(n);
  spec.request.args = w.args({a, b, c}, n);
  spec.request.mode = ExecMode::kFunctional;
  rt.launch(spec);
  rt.memcpy_d2h(hc.data(), c, 4 * n);
  EXPECT_FLOAT_EQ(hc[0], 7.0f);
  EXPECT_FLOAT_EQ(hc[n - 1], 7.0f);

  // Timing sanity: each op pays at least one IPC round trip (60 µs) plus
  // guest driver time; the whole sequence is minutes of guest time away
  // from zero but well below a second.
  EXPECT_GT(q.now(), 5.0 * 60.0);
  // 4 GPU ops × (request + response) messages.
  EXPECT_EQ(ipc.messages_sent(), 8u);
  EXPECT_EQ(drv.requests_sent(), 4u);
}

TEST(SigmaVpDriver, SynchronizeWaitsForOutstandingOps) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  Calibration calib;
  IpcManager ipc(q, calib.ipc);
  Dispatcher disp(q, dev, DispatchConfig{});
  ipc.set_sink([&](Job j) { disp.submit(std::move(j)); });
  Processor guest(q, "guest", calib.vp.guest_ips(calib.host_cpu));
  const auto id = ipc.register_vp("vp0");
  disp.register_vp();
  SigmaVpDriver drv(guest, ipc, dev, id, calib.vp);

  const std::uint64_t buf = drv.malloc(8 << 20);
  SimTime copy_done = -1, sync_done = -1;
  drv.memcpy_h2d(buf, nullptr, 8 << 20, [&](SimTime t) { copy_done = t; });
  drv.synchronize([&](SimTime t) { sync_done = t; });
  q.run();
  EXPECT_GT(copy_done, 0.0);
  EXPECT_GE(sync_done, copy_done);
}

TEST(NativeDriver, ThinWrapperOverDevice) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  const HostCpuConfig host;
  NativeDriver drv(q, dev, host);
  cuda::Runtime rt(q, drv);
  const std::uint64_t buf = rt.malloc(1 << 20);
  std::vector<float> data(1 << 18, 2.5f);
  rt.memcpy_h2d(buf, data.data(), 1 << 20);
  EXPECT_FLOAT_EQ(dev.memory().read<float>(buf), 2.5f);
  // Native path should be within a few µs of raw device time.
  EXPECT_LT(q.now(), 15.0 + (1 << 20) / 6.0e3 + 10.0);
  rt.synchronize();
}

}  // namespace
}  // namespace sigvp
