// Property tests of the Re-scheduler/Dispatcher: randomized multi-VP job
// streams (seeded util/rng, so every failure is reproducible from the seed)
// driven through every interleave x coalesce configuration. Invariants:
//
//  1. Every submitted job completes — no job is lost or duplicated.
//  2. Per-VP partial order: each VP's jobs complete in sequence order, with
//     non-decreasing completion times (the paper's Re-scheduler contract).
//  3. interleave == false  =>  reorders() == 0, and with coalescing also
//     off the global completion order equals the submission order exactly
//     (the serial multiplexing baseline).
//  4. Cross-VP reordering only ever shows up in the reorders() counter —
//     never as a per-VP order violation.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sched/dispatcher.hpp"
#include "util/rng.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

constexpr std::uint64_t kMem = 256ull * 1024 * 1024;
constexpr std::uint32_t kVps = 4;
constexpr std::size_t kJobsPerVp = 10;

struct Rig {
  EventQueue q;
  GpuDevice dev;
  Dispatcher disp;

  explicit Rig(DispatchConfig cfg, std::size_t vps)
      : dev(q, make_quadro4000(), kMem, "gpu"), disp(q, dev, zero_overhead(cfg)) {
    for (std::size_t i = 0; i < vps; ++i) disp.register_vp();
  }

  static DispatchConfig zero_overhead(DispatchConfig cfg) {
    cfg.dispatch_overhead_us = 0.0;
    return cfg;
  }
};

struct Completion {
  std::uint32_t vp;
  std::uint64_t seq;
  SimTime end;
};

// One randomized job: an H2D copy, a D2H copy, or a small analytic kernel.
// With `coalescable`, some jobs become functional vectorAdds carrying the
// workload's coalescing descriptor, so the coalescer's window/eager-peer
// machinery participates in the randomized schedule too.
Job random_job(Rng& rng, Rig& rig, const workloads::Workload& va, std::uint32_t vp,
               std::uint64_t seq, bool coalescable, std::vector<Completion>* log) {
  Job j;
  j.vp_id = vp;
  j.seq_in_vp = seq;
  const std::uint64_t roll = rng.next_below(coalescable ? 4 : 3);
  if (roll == 0 || roll == 1) {
    j.kind = roll == 0 ? JobKind::kMemcpyH2D : JobKind::kMemcpyD2H;
    j.bytes = 1024 + rng.next_below(64 * 1024);
    j.device_addr = rig.dev.malloc(j.bytes);
  } else if (roll == 2) {
    j.kind = JobKind::kKernel;
    j.launch.request.kernel = &va.kernel;  // any kernel body works analytically
    j.launch.request.dims.block_x = 128;
    j.launch.request.dims.grid_x = 1 + static_cast<std::uint32_t>(rng.next_below(8));
    j.launch.request.mode = ExecMode::kAnalytic;
    j.launch.request.analytic_profile.instr_counts[InstrClass::kFp32] =
        100'000 + rng.next_below(400'000);
    j.launch.request.mem_behavior = MemoryBehavior{1 << 12, 500, 0.5, 0.9};
  } else {
    // Functional, coalescing-eligible vectorAdd with its own device buffers.
    const std::uint64_t n = 64;
    std::vector<std::uint64_t> addrs;
    for (const auto& spec : va.buffers(n)) addrs.push_back(rig.dev.malloc(spec.bytes));
    for (std::uint64_t i = 0; i < n; ++i) {
      rig.dev.memory().write<float>(addrs[0] + 4 * i, static_cast<float>(rng.uniform(-2, 2)));
      rig.dev.memory().write<float>(addrs[1] + 4 * i, static_cast<float>(rng.uniform(-2, 2)));
    }
    j.kind = JobKind::kKernel;
    j.launch.request.kernel = &va.kernel;
    j.launch.request.dims = va.dims(n);
    j.launch.request.args = va.args(addrs, n);
    j.launch.request.mode = ExecMode::kFunctional;
    j.launch.coalesce = va.coalesce(n);
  }
  j.on_complete = [log, vp, seq](SimTime end, const KernelExecStats*) {
    log->push_back({vp, seq, end});
  };
  return j;
}

// Submits kVps * kJobsPerVp randomized jobs in a random global order that
// respects each VP's sequence order, runs the simulation, and returns the
// completion log plus the submission order.
struct StreamResult {
  std::vector<Completion> completions;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> submitted;  // (vp, seq)
  std::uint64_t reorders = 0;
  std::uint64_t dispatched = 0;
  bool idle = false;
};

StreamResult run_stream(DispatchConfig cfg, std::uint64_t seed) {
  const workloads::Workload va = workloads::make_vector_add();
  Rig rig(cfg, kVps);
  Rng rng(seed);
  std::vector<Completion> log;

  // Pre-generate each VP's job list, then merge-shuffle.
  std::vector<std::vector<Job>> per_vp(kVps);
  for (std::uint32_t vp = 0; vp < kVps; ++vp) {
    for (std::uint64_t seq = 0; seq < kJobsPerVp; ++seq) {
      per_vp[vp].push_back(random_job(rng, rig, va, vp, seq, cfg.coalesce, &log));
    }
  }

  StreamResult out;
  std::vector<std::size_t> cursor(kVps, 0);
  std::size_t remaining = kVps * kJobsPerVp;
  while (remaining > 0) {
    std::uint32_t vp = static_cast<std::uint32_t>(rng.next_below(kVps));
    while (cursor[vp] == kJobsPerVp) vp = (vp + 1) % kVps;
    out.submitted.emplace_back(vp, cursor[vp]);
    rig.disp.submit(std::move(per_vp[vp][cursor[vp]]));
    ++cursor[vp];
    --remaining;
  }
  rig.q.run();

  out.completions = std::move(log);
  out.reorders = rig.disp.reorders();
  out.dispatched = rig.disp.jobs_dispatched();
  out.idle = rig.disp.idle();
  return out;
}

void check_invariants(const StreamResult& r, const DispatchConfig& cfg,
                      std::uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " interleave=" + std::to_string(cfg.interleave) +
               " coalesce=" + std::to_string(cfg.coalesce));

  // 1. All jobs complete exactly once.
  ASSERT_EQ(r.completions.size(), kVps * kJobsPerVp);
  EXPECT_EQ(r.dispatched, kVps * kJobsPerVp);
  EXPECT_TRUE(r.idle);

  // 2. Per-VP partial order: completion subsequence is exactly seq 0,1,2,...
  //    with non-decreasing times.
  for (std::uint32_t vp = 0; vp < kVps; ++vp) {
    std::uint64_t expect_seq = 0;
    SimTime last_end = -1.0;
    for (const Completion& c : r.completions) {
      if (c.vp != vp) continue;
      EXPECT_EQ(c.seq, expect_seq) << "vp " << vp << " completed out of order";
      EXPECT_GE(c.end, last_end) << "vp " << vp << " time went backwards";
      ++expect_seq;
      last_end = c.end;
    }
    EXPECT_EQ(expect_seq, kJobsPerVp) << "vp " << vp << " lost jobs";
  }

  // 3. Without interleaving there is no Fig. 4(a) reordering, ever.
  if (!cfg.interleave) {
    EXPECT_EQ(r.reorders, 0u);
    if (!cfg.coalesce) {
      // Pure serial baseline: completions replay the submission order.
      ASSERT_EQ(r.submitted.size(), r.completions.size());
      for (std::size_t i = 0; i < r.completions.size(); ++i) {
        EXPECT_EQ(r.completions[i].vp, r.submitted[i].first) << "position " << i;
        EXPECT_EQ(r.completions[i].seq, r.submitted[i].second) << "position " << i;
      }
    }
  }
}

TEST(SchedulerProperties, RandomStreamsSerialBaseline) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const DispatchConfig cfg{false, false};
    check_invariants(run_stream(cfg, seed), cfg, seed);
  }
}

TEST(SchedulerProperties, RandomStreamsInterleaveOnly) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const DispatchConfig cfg{true, false};
    check_invariants(run_stream(cfg, seed), cfg, seed);
  }
}

TEST(SchedulerProperties, RandomStreamsCoalesceOnly) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    DispatchConfig cfg{false, true};
    cfg.coalesce_window_us = 30.0;
    cfg.coalesce_eager_peers = 2;
    check_invariants(run_stream(cfg, seed), cfg, seed);
  }
}

TEST(SchedulerProperties, RandomStreamsBothOptimizations) {
  std::uint64_t total_reorders = 0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull}) {
    DispatchConfig cfg{true, true};
    cfg.coalesce_window_us = 30.0;
    cfg.coalesce_eager_peers = 2;
    const StreamResult r = run_stream(cfg, seed);
    check_invariants(r, cfg, seed);
    total_reorders += r.reorders;
  }
  // Randomized mixed copy/kernel streams across 4 VPs must hit the
  // cross-VP reordering path at least once over the seed set; a permanently
  // zero counter would mean interleaving silently stopped reordering.
  EXPECT_GT(total_reorders, 0u);
}

}  // namespace
}  // namespace sigvp
