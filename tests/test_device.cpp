#include <gtest/gtest.h>

#include "gpu/device.hpp"
#include "ir/builder.hpp"
#include "util/check.hpp"

namespace sigvp {
namespace {

constexpr std::uint64_t kMem = 64ull * 1024 * 1024;

KernelIR store_kernel() {
  // out[gid] = gid (i64), no guard; used for functional device launches.
  KernelBuilder b("store_gid", 1);
  const auto out = b.reg(), gid = b.reg(), ctaid = b.reg(), ntid = b.reg(), tid = b.reg(),
             addr = b.reg();
  b.block("entry");
  b.ld_param(out, 0);
  b.special(ctaid, SpecialReg::kCtaidX);
  b.special(ntid, SpecialReg::kNtidX);
  b.special(tid, SpecialReg::kTidX);
  b.mul_i(gid, ctaid, ntid);
  b.add_i(gid, gid, tid);
  b.addr_of(addr, out, gid, 3);
  b.st_global_i64(gid, addr);
  b.ret();
  return b.build();
}

TEST(Device, MallocFreeBoundAndNonNull) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  const std::uint64_t a = dev.malloc(1024);
  EXPECT_NE(a, 0u);
  EXPECT_EQ(dev.bytes_allocated(), 1024u);
  dev.free(a);
  EXPECT_EQ(dev.bytes_allocated(), 0u);
  EXPECT_THROW(dev.malloc(kMem * 2), ContractError);
}

TEST(Device, CopyDurationHasLatencyAndBandwidthTerms) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  const std::uint64_t dst = dev.malloc(1 << 20);
  const SimTime t_small = dev.memcpy_h2d(0, dst, nullptr, 1);
  // 6 GB/s PCIe: 1 MiB ≈ 175 µs of transfer on top of the fixed latency.
  EventQueue q2;
  GpuDevice dev2(q2, make_quadro4000(), kMem, "gpu2");
  const std::uint64_t dst2 = dev2.malloc(1 << 20);
  const SimTime t_big = dev2.memcpy_h2d(0, dst2, nullptr, 1 << 20);
  EXPECT_NEAR(t_small, 15.0, 1.0);
  EXPECT_NEAR(t_big - t_small, (1 << 20) / (6.0 * 1e3), 5.0);
}

TEST(Device, StreamOpsSerializeEngineOpsOverlap) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  const auto s1 = dev.create_stream();
  const auto s2 = dev.create_stream();
  const std::uint64_t buf = dev.malloc(1 << 20);

  // Two copies on different streams share the single copy engine: serialize.
  const SimTime c1 = dev.memcpy_h2d(s1, buf, nullptr, 1 << 20);
  const SimTime c2 = dev.memcpy_h2d(s2, buf, nullptr, 1 << 20);
  EXPECT_GT(c2, c1);

  // A kernel on s2 must wait for s2's copy, not for anything on s1.
  const KernelIR k = store_kernel();
  LaunchRequest req;
  req.kernel = &k;
  req.dims.block_x = 64;
  req.dims.grid_x = 4;
  req.args.push_ptr(buf);
  const SimTime k2 = dev.launch(s2, req);
  EXPECT_GE(k2, c2);

  // But the compute engine itself was free: the kernel starts right at c2.
  const auto& stats = dev.last_kernel_stats();
  EXPECT_NEAR(k2, c2 + stats.duration_us, 1e-9);
}

TEST(Device, HeadOfLineBlockingOnComputeEngine) {
  // Two kernels submitted back-to-back serialize on the compute engine even
  // when they belong to different streams.
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  const auto s1 = dev.create_stream();
  const auto s2 = dev.create_stream();
  const std::uint64_t buf = dev.malloc(1 << 20);
  const KernelIR k = store_kernel();
  LaunchRequest req;
  req.kernel = &k;
  req.dims.block_x = 64;
  req.dims.grid_x = 64;
  req.args.push_ptr(buf);
  const SimTime k1 = dev.launch(s1, req);
  const SimTime k2 = dev.launch(s2, req);
  EXPECT_NEAR(k2 - k1, k1 - 0.0, 1e-6);  // same duration, strictly after
  EXPECT_GT(dev.compute_engine_free_at(), dev.h2d_engine_free_at());
}

TEST(Device, FunctionalLaunchWritesMemoryAndCallsBack) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  const std::uint64_t buf = dev.malloc(256 * 8);
  const KernelIR k = store_kernel();
  LaunchRequest req;
  req.kernel = &k;
  req.dims.block_x = 64;
  req.dims.grid_x = 4;
  req.args.push_ptr(buf);

  bool called = false;
  dev.launch(0, req, [&](SimTime, const KernelExecStats& stats) {
    called = true;
    EXPECT_GT(stats.sigma.total(), 0u);
    EXPECT_GT(stats.cache.accesses, 0u);
  });
  q.run();
  EXPECT_TRUE(called);
  for (std::int64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(dev.memory().read<std::int64_t>(buf + 8 * static_cast<std::uint64_t>(i)), i);
  }
}

TEST(Device, AnalyticLaunchUsesProvidedProfile) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  const KernelIR k = store_kernel();
  LaunchRequest req;
  req.kernel = &k;
  req.dims.block_x = 256;
  req.dims.grid_x = 1000;
  req.mode = ExecMode::kAnalytic;
  req.args.push_ptr(dev.malloc(1024));
  req.analytic_profile.instr_counts[InstrClass::kFp32] = 256000 * 20;
  req.mem_behavior = MemoryBehavior{1 << 20, 256000, 0.5, 0.9};

  bool called = false;
  KernelExecStats out;
  dev.launch(0, req, [&](SimTime, const KernelExecStats& s) {
    called = true;
    out = s;
  });
  q.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(out.sigma[InstrClass::kFp32], 256000u * 20u);
  EXPECT_GT(out.cache.misses, 0u);
  EXPECT_EQ(dev.kernels_launched(), 1u);
}

TEST(Device, AnalyticLaunchWithoutProfileThrows) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  const KernelIR k = store_kernel();
  LaunchRequest req;
  req.kernel = &k;
  req.mode = ExecMode::kAnalytic;
  req.args.push_ptr(dev.malloc(64));
  EXPECT_THROW(dev.launch(0, req), ContractError);
}

TEST(Device, D2DMovesDataOnDevice) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  const std::uint64_t a = dev.malloc(64);
  const std::uint64_t b = dev.malloc(64);
  dev.memory().write<double>(a, 42.0);
  dev.memcpy_d2d(0, b, a, 64);
  EXPECT_DOUBLE_EQ(dev.memory().read<double>(b), 42.0);
}

TEST(Device, EnergyAndPowerAccounting) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  const std::uint64_t buf = dev.malloc(256 * 8);
  const KernelIR k = store_kernel();
  LaunchRequest req;
  req.kernel = &k;
  req.dims.block_x = 64;
  req.dims.grid_x = 4;
  req.args.push_ptr(buf);
  dev.launch(0, req);
  EXPECT_GT(dev.dynamic_energy_j(), 0.0);
  const double p = dev.average_power_w(us_from_ms(10.0));
  EXPECT_GT(p, dev.arch().static_power_w);
  EXPECT_THROW(dev.average_power_w(0.0), ContractError);
}

TEST(Device, IdleAtCoversAllStreams) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  const auto s1 = dev.create_stream();
  const std::uint64_t buf = dev.malloc(1 << 20);
  const SimTime end = dev.memcpy_h2d(s1, buf, nullptr, 1 << 20);
  EXPECT_DOUBLE_EQ(dev.device_idle_at(), end);
  EXPECT_DOUBLE_EQ(dev.stream_idle_at(s1), end);
  EXPECT_DOUBLE_EQ(dev.stream_idle_at(0), 0.0);
  EXPECT_THROW(dev.stream_idle_at(99), ContractError);
}

TEST(Device, LastKernelStatsRequiresALaunch) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  EXPECT_THROW(dev.last_kernel_stats(), ContractError);
}

}  // namespace
}  // namespace sigvp
