// Tests of the checkpoint/restore subsystem (DESIGN.md §14): bit-exact
// serialization, checksummed file container rejection, checkpoint-store
// rotation and torn-file fallback, crash-plan arming, crash-safe atomic
// writes, state codecs, fleet-capture replay verification, launch-cache
// export/import, and the sweep-level resume contract (resumed output
// bit-identical to a never-interrupted run at any worker count).

#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "fault/crash.hpp"
#include "gpu/launch_cache.hpp"
#include "run/json_writer.hpp"
#include "run/sweep.hpp"
#include "run/traffic.hpp"
#include "snapshot/io.hpp"
#include "snapshot/serial.hpp"
#include "snapshot/state.hpp"
#include "trace/metrics.hpp"
#include "util/check.hpp"
#include "util/fileio.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

namespace fs = std::filesystem;

/// Unique per-test scratch directory, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("sigvp_snapshot_test_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

// --- serial round trips -------------------------------------------------------

TEST(SnapshotSerial, RoundTripsEveryPrimitiveBitExactly) {
  snapshot::Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.14159);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.f64(std::numeric_limits<double>::denorm_min());
  w.f64(std::numeric_limits<double>::infinity());
  w.boolean(true);
  w.str(std::string("nul\0inside", 10));
  w.u64_vec({1, 2, 3});
  w.f64_vec({0.5, -0.25});
  w.byte_vec({9, 8, 7});

  snapshot::Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // -0.0 travels by bit pattern
  const double nan = r.f64();
  EXPECT_TRUE(std::isnan(nan));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(nan),
            std::bit_cast<std::uint64_t>(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), std::string("nul\0inside", 10));
  EXPECT_EQ(r.u64_vec(), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{0.5, -0.25}));
  EXPECT_EQ(r.byte_vec(), (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_TRUE(r.done());
}

TEST(SnapshotSerial, ReaderThrowsOnTruncationInsteadOfReadingGarbage) {
  snapshot::Writer w;
  w.u64(7);
  w.str("hello");
  const std::vector<std::uint8_t>& full = w.buffer();

  // Cut inside the u64.
  snapshot::Reader r1(full.data(), 4);
  EXPECT_THROW(r1.u64(), snapshot::SnapshotError);
  // Cut inside the string body: the length prefix itself must be rejected
  // (guard runs before any allocation).
  snapshot::Reader r2(full.data(), full.size() - 3);
  r2.u64();
  EXPECT_THROW(r2.str(), snapshot::SnapshotError);
  // An absurd vector length prefix from a corrupt payload.
  snapshot::Writer bad;
  bad.u64(std::numeric_limits<std::uint64_t>::max());
  snapshot::Reader r3(bad.buffer());
  EXPECT_THROW(r3.u64_vec(), snapshot::SnapshotError);
}

TEST(SnapshotSerial, DigestIsSensitiveToEveryByte) {
  snapshot::Writer w;
  w.u64(123456789);
  w.str("state");
  const std::uint64_t clean = w.digest();
  std::vector<std::uint8_t> bytes = w.take();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] ^= 0x01;
    EXPECT_NE(snapshot::fnv1a64(bytes.data(), bytes.size()), clean) << "byte " << i;
    bytes[i] ^= 0x01;
  }
  EXPECT_EQ(snapshot::fnv1a64(bytes.data(), bytes.size()), clean);
}

// --- file container -----------------------------------------------------------

TEST(SnapshotIo, FileRoundTripsAndRejectsEveryCorruptionMode) {
  const TempDir tmp("io");
  const std::string path = (tmp.path / "snap.svps").string();
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  ASSERT_TRUE(snapshot::save_snapshot_file(path, payload));
  EXPECT_EQ(snapshot::load_snapshot_file(path), payload);

  auto corrupt = [&](auto mutate) {
    std::vector<char> raw;
    {
      std::ifstream in(path, std::ios::binary);
      raw.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    }
    mutate(raw);
    const std::string mangled = (tmp.path / "mangled.svps").string();
    std::ofstream(mangled, std::ios::binary).write(raw.data(), raw.size());
    EXPECT_THROW(snapshot::load_snapshot_file(mangled), snapshot::SnapshotError);
  };
  corrupt([](std::vector<char>& raw) { raw.resize(10); });             // torn header
  corrupt([](std::vector<char>& raw) { raw.resize(raw.size() - 2); }); // torn payload
  corrupt([](std::vector<char>& raw) { raw[0] ^= 0x20; });             // bad magic
  corrupt([](std::vector<char>& raw) { raw[8] ^= 0xFF; });             // bad version
  corrupt([](std::vector<char>& raw) { raw.back() ^= 0x01; });         // payload bit flip
  corrupt([](std::vector<char>& raw) { raw[20] ^= 0x01; });            // checksum bit flip
  EXPECT_THROW(snapshot::load_snapshot_file((tmp.path / "absent.svps").string()),
               snapshot::SnapshotError);
}

TEST(SnapshotIo, CheckpointStoreRotatesAndFallsBackPastCorruptNewest) {
  const TempDir tmp("store");
  snapshot::CheckpointStore store(tmp.str(), /*keep=*/3);
  std::vector<std::string> published;
  for (std::uint8_t i = 1; i <= 5; ++i) {
    published.push_back(store.publish({i, i, i}));
  }
  // keep=3: only the newest three files remain.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(tmp.path)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 3u);
  EXPECT_FALSE(fs::exists(published[0]));
  EXPECT_FALSE(fs::exists(published[1]));

  snapshot::CheckpointStore::Latest latest = store.find_latest_valid();
  EXPECT_EQ(latest.path, published[4]);
  EXPECT_EQ(latest.payload, (std::vector<std::uint8_t>{5, 5, 5}));
  EXPECT_TRUE(latest.rejected.empty());

  // Tear the newest in half: the scan must reject it by checksum and fall
  // back to the previous checkpoint.
  fs::resize_file(published[4], fs::file_size(published[4]) / 2);
  latest = store.find_latest_valid();
  EXPECT_EQ(latest.path, published[3]);
  EXPECT_EQ(latest.payload, (std::vector<std::uint8_t>{4, 4, 4}));
  ASSERT_EQ(latest.rejected.size(), 1u);
  EXPECT_EQ(latest.rejected[0], published[4]);

  // A new store on the same directory keeps counting upward — sequence
  // numbers never collide with surviving files.
  snapshot::CheckpointStore reopened(tmp.str(), 3);
  const std::string next = reopened.publish({6});
  EXPECT_GT(next, published[4]);

  // All checkpoints corrupt: no fallback, every file reported.
  for (const auto& e : fs::directory_iterator(tmp.path)) {
    fs::resize_file(e.path(), 3);
  }
  latest = reopened.find_latest_valid();
  EXPECT_TRUE(latest.path.empty());
  EXPECT_EQ(latest.rejected.size(), 3u);
}

// --- crash plan ---------------------------------------------------------------

TEST(CrashPlan, CountedModeFiresExactlyAtTheArmedVisit) {
  CrashPlan& plan = CrashPlan::instance();
  std::vector<int> fired;
  plan.set_exit_handler([&](int code) { fired.push_back(code); });
  plan.arm_at(CrashSite::kDispatch, 3);
  for (int i = 0; i < 5; ++i) plan.crash_point(CrashSite::kDispatch);
  plan.crash_point(CrashSite::kCoalescedGroup);  // other sites never fire
  EXPECT_EQ(fired, (std::vector<int>{kCrashExitCode}));
  EXPECT_EQ(plan.visits(CrashSite::kDispatch), 5u);
  EXPECT_EQ(plan.visits(CrashSite::kCoalescedGroup), 1u);
  plan.disarm();
  plan.set_exit_handler({});
}

TEST(CrashPlan, SeededModeIsAPureFunctionOfSeedSiteAndVisit) {
  CrashPlan& plan = CrashPlan::instance();
  auto run_pattern = [&](std::uint64_t seed) {
    std::vector<std::uint64_t> deaths;
    std::uint64_t visit = 0;
    plan.set_exit_handler([&](int) { deaths.push_back(visit); });
    plan.arm_seeded(seed, 0.05);
    for (visit = 1; visit <= 400; ++visit) plan.crash_point(CrashSite::kSnapshotWrite);
    return deaths;
  };
  const auto a = run_pattern(11);
  const auto b = run_pattern(11);
  const auto c = run_pattern(12);
  EXPECT_FALSE(a.empty());  // 400 visits at 5% — astronomically unlikely to miss
  EXPECT_EQ(a, b);          // same seed, same deaths
  EXPECT_NE(a, c);          // different seed, different schedule
  plan.disarm();
  plan.set_exit_handler({});
}

TEST(CrashPlan, DisarmedSitesCostNothingAndCountNothing) {
  CrashPlan& plan = CrashPlan::instance();
  plan.disarm();
  const std::uint64_t before = plan.visits(CrashSite::kDispatch);
  for (int i = 0; i < 100; ++i) crash_point(CrashSite::kDispatch);
  EXPECT_EQ(plan.visits(CrashSite::kDispatch), before);
}

// --- crash-safe atomic writes -------------------------------------------------

TEST(AtomicWrite, ReadersSeeOldContentUntilTheRename) {
  const TempDir tmp("atomic");
  const std::string path = (tmp.path / "out.json").string();
  ASSERT_TRUE(util::write_file_atomic(path, "v1"));

  auto slurp = [&]() {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  EXPECT_EQ(slurp(), "v1");

  // In the pre-rename window (where kSnapshotWrite kills the process) the
  // published path still holds the old bytes — a crash there loses nothing.
  bool hook_ran = false;
  ASSERT_TRUE(util::write_file_atomic(path, "v2", [&] {
    hook_ran = true;
    EXPECT_EQ(slurp(), "v1");
  }));
  EXPECT_TRUE(hook_ran);
  EXPECT_EQ(slurp(), "v2");

  // No leftover temp files after publication.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(tmp.path)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);

  EXPECT_FALSE(util::write_file_atomic((tmp.path / "no/such/dir/x").string(), "y"));
  EXPECT_TRUE(util::write_file_atomic("/dev/null", "discarded"));  // device: direct write
}

// --- state codecs -------------------------------------------------------------

run::SweepJob tiny_traffic_job(const workloads::Workload& w, std::size_t vps,
                               run::traffic::Shape shape, const std::string& name) {
  run::SweepJob job;
  job.name = name;
  job.group = w.app;
  job.config.backend = Backend::kSigmaVp;
  job.config.mode = ExecMode::kAnalytic;
  job.config.dispatch.interleave = true;
  job.config.dispatch.coalesce = true;
  job.config.gpu_mem_bytes = 16ull * 1024 * 1024;
  run::traffic::TrafficConfig tc;
  tc.shape = shape;
  tc.mean_interarrival_us = 400.0;
  tc.seed = 21;
  for (std::size_t vp = 0; vp < vps; ++vp) {
    AppInstance a;
    a.workload = &w;
    a.n = w.test_n;
    a.jitter = 0;
    a.arrivals = run::traffic::arrival_times(tc, static_cast<std::uint32_t>(vp), 6);
    job.apps.push_back(std::move(a));
  }
  return job;
}

std::vector<std::uint8_t> result_bytes(const ScenarioResult& r) {
  snapshot::Writer w;
  snapshot::save_scenario_result(w, r);
  return w.take();
}

TEST(SnapshotState, ScenarioResultRoundTripsBitExact) {
  const auto suite = workloads::make_app_suite();
  const run::SweepJob job =
      tiny_traffic_job(suite.front(), 3, run::traffic::Shape::kPoisson, "rt");
  const ScenarioResult original = run_scenario(job.config, job.apps);
  ASSERT_GT(original.requests_completed, 0u);

  const std::vector<std::uint8_t> a = result_bytes(original);
  snapshot::Reader r(a);
  const ScenarioResult restored = snapshot::load_scenario_result(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(result_bytes(restored), a);  // save(load(x)) == save(x), bit for bit
  EXPECT_EQ(restored.makespan_us, original.makespan_us);
  EXPECT_EQ(restored.requests_completed, original.requests_completed);
  EXPECT_EQ(restored.latency.count, original.latency.count);
  EXPECT_EQ(restored.latency.counts, original.latency.counts);
  EXPECT_EQ(restored.app_done_us, original.app_done_us);
}

TEST(SnapshotState, MetricsRoundTripPreservesJson) {
  trace::Metrics m;
  m.counter("jobs").value = 42;
  m.gauge("depth").record_max(7.5);
  trace::Histogram& h = m.histogram("lat", {1.0, 10.0, 100.0});
  h.record(0.5);
  h.record(55.0);
  h.record(1e6);

  snapshot::Writer w;
  snapshot::save_metrics(w, m);
  snapshot::Reader r(w.buffer());
  const trace::Metrics restored = snapshot::load_metrics(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(restored.to_json(""), m.to_json(""));
}

TEST(SnapshotState, ZeroTrafficRestoreKeepsNoLatencyBlockSchema) {
  // A restored closed-loop result must keep latency.count == 0 so the JSON
  // writer continues to omit the "requests"/"latency" keys — a restore must
  // never invent schema blocks the original run didn't have.
  const auto suite = workloads::make_suite();
  run::SweepJob job;
  job.name = "closed";
  job.group = "g";
  job.config.backend = Backend::kSigmaVp;
  job.config.mode = ExecMode::kAnalytic;
  job.config.gpu_mem_bytes = 16ull * 1024 * 1024;
  workloads::AppTraits t = workloads::find(suite, "vectorAdd").traits;
  t.iterations = 2;
  job.apps.push_back(AppInstance{&workloads::find(suite, "vectorAdd"),
                                 workloads::find(suite, "vectorAdd").test_n, t});
  const ScenarioResult original = run_scenario(job.config, job.apps);
  ASSERT_EQ(original.latency.count, 0u);

  const std::vector<std::uint8_t> enc = result_bytes(original);
  snapshot::Reader r(enc);
  const ScenarioResult restored = snapshot::load_scenario_result(r);
  EXPECT_EQ(restored.latency.count, 0u);

  run::SweepResult sweep;
  sweep.workers = 1;
  sweep.jobs.push_back({job.name, job.group, restored});
  const std::string json = run::sweep_to_json(sweep, "schema");
  EXPECT_EQ(json.find("\"latency\""), std::string::npos);
  EXPECT_EQ(json.find("\"requests\""), std::string::npos);
}

TEST(SnapshotState, FingerprintIsSensitiveToEveryIdentityKnob) {
  const auto suite = workloads::make_app_suite();
  const run::SweepJob base =
      tiny_traffic_job(suite.front(), 2, run::traffic::Shape::kPoisson, "fp");
  const auto fp = [](const run::SweepJob& j) {
    return snapshot::scenario_fingerprint(j.name, j.group, j.config, j.apps);
  };
  const std::uint64_t base_fp = fp(base);
  EXPECT_EQ(fp(base), base_fp);  // pure function

  run::SweepJob j = base;
  j.name = "fp2";
  EXPECT_NE(fp(j), base_fp);
  j = base;
  j.config.dispatch.coalesce = false;
  EXPECT_NE(fp(j), base_fp);
  j = base;
  j.config.gpu_mem_bytes *= 2;
  EXPECT_NE(fp(j), base_fp);
  j = base;
  j.apps[0].n += 1;
  EXPECT_NE(fp(j), base_fp);
  j = base;
  j.apps[0].arrivals[0] += 1.0;
  EXPECT_NE(fp(j), base_fp);
  j = base;
  j.apps.pop_back();
  EXPECT_NE(fp(j), base_fp);
}

TEST(SnapshotState, SweepCheckpointCodecRejectsTrailingBytes) {
  snapshot::SweepCheckpoint cp;
  cp.fingerprint = 99;
  cp.jobs.resize(2);
  cp.jobs[0].done = false;
  cp.jobs[0].captures.push_back(FleetCapture{10.0, 5, 0xABCD});
  std::vector<std::uint8_t> enc = snapshot::encode_sweep_checkpoint(cp);
  const snapshot::SweepCheckpoint dec = snapshot::decode_sweep_checkpoint(enc);
  EXPECT_EQ(dec.fingerprint, 99u);
  ASSERT_EQ(dec.jobs.size(), 2u);
  ASSERT_EQ(dec.jobs[0].captures.size(), 1u);
  EXPECT_EQ(dec.jobs[0].captures[0], (FleetCapture{10.0, 5, 0xABCD}));

  enc.push_back(0);  // trailing garbage must not be silently ignored
  EXPECT_THROW(snapshot::decode_sweep_checkpoint(enc), snapshot::SnapshotError);
}

// --- fleet-capture replay verification ----------------------------------------

TEST(SnapshotCapture, ReplayReproducesRecordedDigestsAndDetectsTampering) {
  const auto suite = workloads::make_app_suite();
  const run::SweepJob job =
      tiny_traffic_job(suite.front(), 3, run::traffic::Shape::kBursty, "cap");

  CaptureOptions record;
  record.every_us = 300.0;
  std::vector<FleetCapture> captures;
  const ScenarioResult first = run_scenario(job.config, job.apps, record, &captures);
  ASSERT_GE(captures.size(), 3u) << "cadence too coarse for this scenario";

  // Replay under verification: every capture must match position by position.
  CaptureOptions verify;
  verify.every_us = 300.0;
  verify.expect = captures;
  const ScenarioResult second = run_scenario(job.config, job.apps, verify, nullptr);
  EXPECT_EQ(result_bytes(second), result_bytes(first));

  // One flipped digest bit — divergence is detected, not absorbed.
  verify.expect[1].digest ^= 1;
  EXPECT_THROW(run_scenario(job.config, job.apps, verify, nullptr),
               snapshot::SnapshotError);

  // A cadence mismatch produces fewer/shifted captures — also detected.
  verify.expect = captures;
  verify.every_us = 450.0;
  EXPECT_THROW(run_scenario(job.config, job.apps, verify, nullptr),
               snapshot::SnapshotError);

  // The no-capture path is byte-identical to the plain overload.
  const ScenarioResult plain = run_scenario(job.config, job.apps);
  EXPECT_EQ(result_bytes(plain), result_bytes(first));
}

// --- launch cache export/import -----------------------------------------------

TEST(SnapshotCache, ExportImportRestoresResidentEntriesByteExact) {
  const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");
  workloads::AppTraits t = w.traits;
  t.iterations = 3;
  t.launches_per_iter = 1;
  t.iter_h2d_bytes = 0;
  t.iter_d2h_bytes = 0;
  run::SweepJob job;
  job.name = "cachefill";
  job.group = "g";
  job.config.backend = Backend::kSigmaVp;
  job.config.mode = ExecMode::kFunctional;
  job.config.functional_io = true;
  job.config.gpu_mem_bytes = 64ull * 1024 * 1024;
  for (std::size_t i = 0; i < 4; ++i) job.apps.push_back(AppInstance{&w, w.test_n, t});

  LaunchCache& cache = LaunchCache::instance();
  cache.clear();
  cache.set_enabled(true);
  const run::SweepResult filled = run::SweepRunner(1).run({job});
  ASSERT_GT(cache.stats().entries, 0u);

  snapshot::Writer w1;
  cache.export_state(w1);
  const std::vector<std::uint8_t> blob = w1.buffer();
  const std::uint64_t entries = cache.stats().entries;
  const std::uint64_t bytes = cache.stats().bytes;

  cache.clear();
  ASSERT_EQ(cache.stats().entries, 0u);
  snapshot::Reader r(blob);
  cache.import_state(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(cache.stats().entries, entries);
  EXPECT_EQ(cache.stats().bytes, bytes);

  // Re-export: identical bytes, so content AND FIFO order survived.
  snapshot::Writer w2;
  cache.export_state(w2);
  EXPECT_EQ(w2.buffer(), blob);

  // The imported entries actually serve: a rerun of the same fleet hits.
  const LaunchCacheStats before = cache.stats();
  const run::SweepResult rerun = run::SweepRunner(1).run({job});
  EXPECT_GT(cache.stats().hits, before.hits);
  EXPECT_EQ(result_bytes(rerun.jobs[0].result), result_bytes(filled.jobs[0].result));

  // A truncated blob raises instead of silently stopping early.
  cache.clear();
  std::vector<std::uint8_t> bad = blob;
  bad.resize(bad.size() / 2);
  snapshot::Reader rb(bad);
  EXPECT_THROW(cache.import_state(rb), snapshot::SnapshotError);
  cache.clear();
}

// --- sweep-level resume -------------------------------------------------------

std::vector<run::SweepJob> resume_jobs(const std::vector<workloads::Workload>& suite) {
  std::vector<run::SweepJob> jobs;
  jobs.push_back(tiny_traffic_job(suite[0], 2, run::traffic::Shape::kPoisson, "a"));
  jobs.push_back(tiny_traffic_job(suite[1 % suite.size()], 3,
                                  run::traffic::Shape::kBursty, "b"));
  jobs.push_back(tiny_traffic_job(suite[2 % suite.size()], 2,
                                  run::traffic::Shape::kPoisson, "c"));
  return jobs;
}

std::vector<std::vector<std::uint8_t>> sweep_bytes(const run::SweepResult& r) {
  std::vector<std::vector<std::uint8_t>> out;
  for (const auto& j : r.jobs) out.push_back(result_bytes(j.result));
  return out;
}

TEST(SnapshotSweep, ResumeIsBitIdenticalToUninterruptedAtAnyWorkerCount) {
  const TempDir tmp("sweep");
  const auto suite = workloads::make_app_suite();
  const std::vector<run::SweepJob> jobs = resume_jobs(suite);

  const run::SweepResult baseline = run::SweepRunner(2).run(jobs);
  const auto golden = sweep_bytes(baseline);

  // Cold start with checkpointing: same results, checkpoints published.
  run::SweepSnapshotOptions snap;
  snap.dir = tmp.str();
  snap.every_us = 300.0;
  run::SweepResumeInfo info;
  const run::SweepResult first = run::SweepRunner(2).run(jobs, snap, &info);
  EXPECT_TRUE(info.resumed_from.empty());
  EXPECT_EQ(sweep_bytes(first), golden);
  snapshot::CheckpointStore store(tmp.str());
  ASSERT_FALSE(store.find_latest_valid().path.empty());

  // Full-resume: every job spliced from the final checkpoint, nothing re-run.
  for (const std::size_t workers : {1u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    run::SweepResumeInfo ri;
    const run::SweepResult resumed = run::SweepRunner(workers).run(jobs, snap, &ri);
    EXPECT_EQ(ri.jobs_resumed, jobs.size());
    EXPECT_FALSE(ri.resumed_from.empty());
    EXPECT_EQ(sweep_bytes(resumed), golden);
  }

  // Mid-flight checkpoint, hand-built the way a crashed run leaves one:
  // job a finished; job b interrupted with its capture prefix recorded;
  // job c untouched. Resume must splice a, replay b under digest
  // verification, run c fresh — and still match the golden bytes.
  snapshot::SweepCheckpoint cp = snapshot::decode_sweep_checkpoint(
      snapshot::load_snapshot_file(store.find_latest_valid().path));
  ASSERT_EQ(cp.jobs.size(), 3u);
  CaptureOptions rec;
  rec.every_us = snap.every_us;
  std::vector<FleetCapture> caps_b;
  run_scenario(jobs[1].config, jobs[1].apps, rec, &caps_b);
  ASSERT_GE(caps_b.size(), 2u);
  caps_b.resize(caps_b.size() / 2);  // a prefix, as a mid-run crash leaves
  cp.jobs[1] = snapshot::JobCheckpoint{};
  cp.jobs[1].captures = caps_b;
  cp.jobs[2] = snapshot::JobCheckpoint{};

  for (const std::size_t workers : {1u, 4u}) {
    SCOPED_TRACE("partial workers=" + std::to_string(workers));
    // Publish through a fresh store each round: the runner published newer
    // (all-done) checkpoints meanwhile, and the crafted one must be newest.
    snapshot::CheckpointStore(tmp.str()).publish(snapshot::encode_sweep_checkpoint(cp));
    run::SweepResumeInfo ri;
    const run::SweepResult resumed = run::SweepRunner(workers).run(jobs, snap, &ri);
    EXPECT_EQ(ri.jobs_resumed, 1u);
    EXPECT_EQ(ri.jobs_replayed, 1u);
    EXPECT_EQ(sweep_bytes(resumed), golden);
  }
}

TEST(SnapshotSweep, CheckpointForADifferentSweepIsRejected) {
  const TempDir tmp("reject");
  const auto suite = workloads::make_app_suite();
  std::vector<run::SweepJob> jobs = resume_jobs(suite);

  run::SweepSnapshotOptions snap;
  snap.dir = tmp.str();
  snap.every_us = 300.0;
  run::SweepRunner(2).run(jobs, snap, nullptr);

  // Same directory, different job list: the fingerprint mismatch must reject
  // the checkpoint and run everything from scratch.
  jobs[0].config.dispatch.coalesce = false;
  const run::SweepResult fresh_baseline = run::SweepRunner(2).run(jobs);
  run::SweepResumeInfo info;
  const run::SweepResult fresh = run::SweepRunner(2).run(jobs, snap, &info);
  EXPECT_TRUE(info.resumed_from.empty());
  EXPECT_EQ(info.jobs_resumed, 0u);
  EXPECT_FALSE(info.rejected.empty());
  EXPECT_EQ(sweep_bytes(fresh), sweep_bytes(fresh_baseline));
}

TEST(SnapshotSweep, ExplicitResumePathFallsBackToDirScanWhenTorn) {
  const TempDir tmp("explicit");
  const auto suite = workloads::make_app_suite();
  const std::vector<run::SweepJob> jobs = resume_jobs(suite);
  const auto golden = sweep_bytes(run::SweepRunner(2).run(jobs));

  run::SweepSnapshotOptions snap;
  snap.dir = tmp.str();
  snap.every_us = 300.0;
  run::SweepRunner(2).run(jobs, snap, nullptr);

  // Copy the newest checkpoint aside and tear the copy; --resume points at
  // the torn file, the directory scan provides the good fallback.
  snapshot::CheckpointStore store(tmp.str());
  const std::string good = store.find_latest_valid().path;
  const std::string torn = (tmp.path / "torn.svps").string();
  fs::copy_file(good, torn);
  fs::resize_file(torn, fs::file_size(torn) / 2);

  snap.resume_path = torn;
  run::SweepResumeInfo info;
  const run::SweepResult resumed = run::SweepRunner(2).run(jobs, snap, &info);
  ASSERT_FALSE(info.rejected.empty());
  EXPECT_EQ(info.rejected[0], torn);
  EXPECT_EQ(info.resumed_from, good);
  EXPECT_EQ(info.jobs_resumed, jobs.size());
  EXPECT_EQ(sweep_bytes(resumed), golden);
}

}  // namespace
}  // namespace sigvp
