// Tests of the observability subsystem (src/trace): histogram bucket
// semantics, registry merging, the disabled-by-default contract (BENCH JSON
// byte-identical with collection off), worker-count-independent metrics, flow
// id uniqueness across VPs, and that an emitted trace is well-formed JSON
// that round-trips through write().

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "run/json_writer.hpp"
#include "run/sweep.hpp"
#include "run/traffic.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

// --- minimal JSON validator ---------------------------------------------------
// Enough of RFC 8259 to prove the emitted documents parse: values, objects,
// arrays, strings with escapes, numbers, literals. No semantic checks.

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- histogram semantics ------------------------------------------------------

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  trace::Histogram h({1.0, 2.0, 5.0});
  ASSERT_EQ(h.counts.size(), 4u);  // 3 edges + overflow
  h.record(1.0);                   // exactly on an edge -> that bucket
  h.record(0.5);                   // below the first edge -> bucket 0
  h.record(1.5);
  h.record(2.0);
  h.record(5.0);
  h.record(5.0001);  // above the last edge -> overflow
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.count, 6u);
  EXPECT_EQ(h.min, 0.5);
  EXPECT_EQ(h.max, 5.0001);
}

TEST(Histogram, QuantileReturnsBucketEdgeClampedToObservedMax) {
  trace::Histogram h({1.0, 2.0, 5.0});
  h.record(1.0);
  h.record(2.0);
  EXPECT_EQ(h.quantile(0.5), 1.0);  // rank 1 lands in bucket 0
  EXPECT_EQ(h.quantile(1.0), 2.0);  // rank 2 in bucket 1; edge == observed max
  trace::Histogram one({10.0});
  one.record(3.0);
  // A p99 of a single sample must not report the bucket edge (10) but the
  // observed max (3) — quantiles never exceed what was actually seen.
  EXPECT_EQ(one.quantile(0.99), 3.0);
}

TEST(Histogram, OverflowBucketReportsObservedMax) {
  trace::Histogram h({1.0, 2.0});
  h.record(100.0);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.quantile(0.99), 100.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  trace::Histogram h({1.0});
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, RejectsNonAscendingEdges) {
  EXPECT_THROW(trace::Histogram({2.0, 1.0}), ContractError);
  EXPECT_THROW(trace::Histogram({1.0, 1.0}), ContractError);
}

TEST(Histogram, MergeSumsBucketwiseAndRequiresIdenticalEdges) {
  trace::Histogram a({1.0, 2.0});
  trace::Histogram b({1.0, 2.0});
  a.record(0.5);
  b.record(1.5);
  b.record(9.0);
  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.counts[0], 1u);
  EXPECT_EQ(a.counts[1], 1u);
  EXPECT_EQ(a.counts[2], 1u);
  EXPECT_EQ(a.min, 0.5);
  EXPECT_EQ(a.max, 9.0);
  EXPECT_EQ(a.sum, 11.0);
  trace::Histogram c({1.0, 3.0});
  c.record(0.1);
  EXPECT_THROW(a.merge(c), ContractError);
  // Merging an EMPTY histogram with different edges is a no-op, not an error
  // (scenarios that never touched a ladder merge cleanly).
  trace::Histogram empty({42.0});
  a.merge(empty);
  EXPECT_EQ(a.count, 3u);
}

TEST(Histogram, MergeIntoEmptyAdoptsOtherMinMaxExactly) {
  // The empty side's 0.0 min/max are sentinels, not samples: folding a
  // populated histogram into a fresh one must copy the observed extremes,
  // not min() them against the sentinel (min would wrongly stay 0.0).
  trace::Histogram into({1.0, 2.0});
  trace::Histogram from({1.0, 2.0});
  from.record(1.5);
  from.record(9.0);
  into.merge(from);
  EXPECT_EQ(into.count, 2u);
  EXPECT_EQ(into.min, 1.5);
  EXPECT_EQ(into.max, 9.0);
  EXPECT_EQ(into.sum, 10.5);
  EXPECT_EQ(into.counts[1], 1u);
  EXPECT_EQ(into.counts[2], 1u);
}

TEST(Histogram, MergeOfEmptyIsByteExactNoOp) {
  // A restored zero-traffic scenario merges an all-zero latency histogram
  // into the sweep fold; every field (including the min/max sentinels) must
  // come through untouched so the merged result — and the JSON schema
  // decision `count > 0` drives — is byte-identical to a run where the
  // empty histogram never existed.
  trace::Histogram a({1.0, 2.0});
  a.record(0.5);
  a.record(1.7);
  const trace::Histogram before = a;
  trace::Histogram empty_same({1.0, 2.0});
  a.merge(empty_same);
  EXPECT_EQ(a.count, before.count);
  EXPECT_EQ(a.counts, before.counts);
  EXPECT_EQ(a.sum, before.sum);
  EXPECT_EQ(a.min, before.min);
  EXPECT_EQ(a.max, before.max);

  trace::Histogram e1({5.0});
  trace::Histogram e2({5.0});
  e1.merge(e2);  // empty into empty: still empty, sentinels intact
  EXPECT_EQ(e1.count, 0u);
  EXPECT_EQ(e1.min, 0.0);
  EXPECT_EQ(e1.max, 0.0);
  EXPECT_EQ(e1.quantile(0.99), 0.0);
}

TEST(Histogram, CanonicalLaddersAreStrictlyAscending) {
  for (const auto* edges : {&trace::latency_buckets_us(), &trace::depth_buckets(),
                            &trace::group_size_buckets(), &trace::bytes_buckets()}) {
    ASSERT_FALSE(edges->empty());
    for (std::size_t i = 1; i < edges->size(); ++i) {
      EXPECT_LT((*edges)[i - 1], (*edges)[i]);
    }
  }
}

// --- registry merging ---------------------------------------------------------

TEST(Metrics, MergeAddsCountersMaxesGaugesSumsHistograms) {
  trace::Metrics a, b;
  a.counter("n").value = 3;
  b.counter("n").value = 4;
  a.gauge("g").record_max(2.0);
  b.gauge("g").record_max(7.0);
  a.histogram("h", {1.0, 2.0}).record(0.5);
  b.histogram("h", {1.0, 2.0}).record(1.5);
  a.merge(b);
  EXPECT_EQ(a.counter("n").value, 7u);
  EXPECT_EQ(a.gauge("g").value, 7.0);
  EXPECT_EQ(a.histogram("h", {1.0, 2.0}).count, 2u);
  // Merge order must not matter for the merged values (counters/gauges).
  trace::Metrics c, d;
  c.counter("n").value = 4;
  d.counter("n").value = 3;
  c.gauge("g").record_max(7.0);
  d.gauge("g").record_max(2.0);
  c.merge(d);
  EXPECT_EQ(c.counter("n").value, a.counter("n").value);
  EXPECT_EQ(c.gauge("g").value, a.gauge("g").value);
}

TEST(Metrics, ToJsonIsValidAndOmitsEmptySections) {
  trace::Metrics empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.to_json(""), "{}");
  trace::Metrics m;
  m.counter("a.count").value = 2;
  std::string j = m.to_json("");
  EXPECT_TRUE(JsonParser(j).valid()) << j;
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_EQ(j.find("\"gauges\""), std::string::npos);
  EXPECT_EQ(j.find("\"histograms\""), std::string::npos);
  m.histogram("h.lat", trace::latency_buckets_us()).record(3.0);
  m.gauge("g.max").record_max(1.5);
  j = m.to_json("  ");
  EXPECT_TRUE(JsonParser(j).valid()) << j;
}

// --- scenario-level behaviour -------------------------------------------------

std::vector<run::SweepJob> fleet_jobs(std::size_t vps) {
  static const auto suite = workloads::make_suite();
  const workloads::Workload& va = workloads::find(suite, "vectorAdd");
  const workloads::Workload& bs = workloads::find(suite, "BlackScholes");
  static workloads::AppTraits quick_va = [] {
    workloads::AppTraits t = workloads::find(workloads::make_suite(), "vectorAdd").traits;
    t.iterations = 2;
    return t;
  }();
  static workloads::AppTraits quick_bs = [] {
    workloads::AppTraits t = workloads::find(workloads::make_suite(), "BlackScholes").traits;
    t.iterations = 2;
    return t;
  }();
  std::vector<run::SweepJob> jobs;
  for (const char* variant : {"plain", "opt"}) {
    run::SweepJob job;
    job.name = std::string("va/") + variant;
    job.group = "vectorAdd";
    job.config.mode = ExecMode::kAnalytic;
    for (std::size_t i = 0; i < vps; ++i) job.apps.push_back(AppInstance{&va, va.test_n, quick_va});
    if (std::string(variant) == "opt") {
      job.config.dispatch.interleave = true;
      job.config.dispatch.coalesce = true;
      job.config.async_launches = true;
    }
    jobs.push_back(job);
  }
  run::SweepJob job;
  job.name = "bs/plain";
  job.group = "BlackScholes";
  job.config.mode = ExecMode::kAnalytic;
  for (std::size_t i = 0; i < vps; ++i) job.apps.push_back(AppInstance{&bs, bs.test_n, quick_bs});
  jobs.push_back(job);
  return jobs;
}

/// Scoped "collection forced on" so a test failure cannot leak the flag.
struct ForcedMetrics {
  ForcedMetrics() { trace::set_metrics_forced(true); }
  ~ForcedMetrics() { trace::set_metrics_forced(false); }
};

TEST(TraceScenario, DisabledCollectionKeepsBenchJsonByteIdentical) {
  ASSERT_EQ(trace::Tracer::active(), nullptr)
      << "SIGVP_TRACE must be unset when running the test suite";
  const auto jobs = fleet_jobs(3);

  run::SweepResult off = run::SweepRunner(2).run(jobs);
  EXPECT_EQ(off.metrics, nullptr) << "metrics must not be collected by default";

  run::SweepResult on = [&] {
    ForcedMetrics forced;
    return run::SweepRunner(2).run(jobs);
  }();
  ASSERT_NE(on.metrics, nullptr);
  EXPECT_FALSE(on.metrics->empty());
  const std::string with_metrics = run::sweep_to_json(on, "trace_test");
  EXPECT_NE(with_metrics.find("\"metrics\""), std::string::npos);
  EXPECT_TRUE(JsonParser(with_metrics).valid());

  // The only differences collection may introduce are the metrics block and
  // host wall-clock: normalize both and require byte identity.
  off.wall_ms = 0.0;
  on.wall_ms = 0.0;
  on.metrics = nullptr;
  EXPECT_EQ(run::sweep_to_json(off, "trace_test"), run::sweep_to_json(on, "trace_test"));
  EXPECT_EQ(run::sweep_to_json(off, "trace_test").find("\"metrics\""), std::string::npos);
}

TEST(TraceScenario, MetricsAreIdenticalForAnyWorkerCount) {
  ForcedMetrics forced;
  const auto jobs = fleet_jobs(4);
  std::string reference;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const run::SweepResult sweep = run::SweepRunner(workers).run(jobs);
    ASSERT_NE(sweep.metrics, nullptr) << "workers=" << workers;
    const std::string json = sweep.metrics->to_json("");
    EXPECT_TRUE(JsonParser(json).valid());
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference) << "metrics diverged at workers=" << workers;
    }
  }
  // Sanity: the sim-domain counters actually observed the scenarios.
  const run::SweepResult sweep = run::SweepRunner(1).run(jobs);
  EXPECT_GT(sweep.metrics->counters().at("ipc.requests").value, 0u);
  EXPECT_GT(sweep.metrics->counters().at("sched.jobs_dispatched").value, 0u);
  EXPECT_GT(sweep.metrics->histograms().at("ipc.job_latency_us").count, 0u);
}

// --- open-loop traffic latency metrics ---------------------------------------

/// A camPipeline fleet under seeded Poisson arrivals: the smallest scenario
/// that exercises the request-latency histogram end to end.
run::SweepJob traffic_job(std::size_t vps, std::uint32_t requests_per_vp) {
  static const auto apps = workloads::make_app_suite();
  const workloads::Workload& cam = workloads::find(apps, "camPipeline");
  run::SweepJob job;
  job.name = "cam/traffic";
  job.group = "camPipeline";
  job.config.backend = Backend::kSigmaVp;
  job.config.mode = ExecMode::kAnalytic;
  job.config.dispatch.interleave = true;
  job.config.gpu_mem_bytes = 64ull * 1024 * 1024;
  run::traffic::TrafficConfig tc;
  tc.shape = run::traffic::Shape::kPoisson;
  tc.mean_interarrival_us = 1500.0;
  tc.seed = 5;
  for (std::size_t vp = 0; vp < vps; ++vp) {
    AppInstance a;
    a.workload = &cam;
    a.n = 2048;
    a.arrivals =
        run::traffic::arrival_times(tc, static_cast<std::uint32_t>(vp), requests_per_vp);
    job.apps.push_back(std::move(a));
  }
  return job;
}

TEST(TraceScenario, LatencyPercentilesAreIdenticalForAnyWorkerCount) {
  const std::vector<run::SweepJob> jobs = {traffic_job(4, 6)};
  std::string reference;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    run::SweepResult sweep = run::SweepRunner(workers).run(jobs);

    const ScenarioResult& r = sweep.jobs.front().result;
    EXPECT_EQ(r.requests_completed, 4u * 6u);
    EXPECT_EQ(r.latency.count, 4u * 6u);
    const double p50 = r.latency.quantile(0.50);
    const double p95 = r.latency.quantile(0.95);
    const double p99 = r.latency.quantile(0.99);
    EXPECT_GT(p50, 0.0);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, r.latency.max);

    // The whole JSON document — including the latency block — must be a pure
    // function of the job list; normalize the two host-dependent fields.
    sweep.workers = 1;
    sweep.wall_ms = 0.0;
    const std::string json = run::sweep_to_json(sweep, "trace_test");
    EXPECT_TRUE(JsonParser(json).valid());
    EXPECT_NE(json.find("\"latency\""), std::string::npos);
    EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference) << "latency JSON diverged at workers=" << workers;
    }
  }
}

TEST(TraceScenario, ZeroTrafficSweepEmitsNoLatencyBlock) {
  // Closed-loop jobs (no arrival streams) must not grow a latency block:
  // the schema only reports request latency where requests exist.
  const run::SweepResult sweep = run::SweepRunner(2).run(fleet_jobs(2));
  for (const run::SweepJobResult& j : sweep.jobs) {
    EXPECT_EQ(j.result.requests_completed, 0u);
    EXPECT_EQ(j.result.latency.count, 0u);
  }
  const std::string json = run::sweep_to_json(sweep, "trace_test");
  EXPECT_TRUE(JsonParser(json).valid());
  EXPECT_EQ(json.find("\"latency\""), std::string::npos);
  EXPECT_EQ(json.find("\"requests\""), std::string::npos);
}

/// Extracts every numeric value of `key` ("id":..., "pid":...) from events
/// whose "ph" field equals `ph`.
std::vector<std::string> field_of_events(const std::string& json, const std::string& ph,
                                         const std::string& key) {
  std::vector<std::string> out;
  const std::string ph_marker = "\"ph\":\"" + ph + "\"";
  std::size_t pos = 0;
  while ((pos = json.find(ph_marker, pos)) != std::string::npos) {
    const std::size_t line_end = json.find('\n', pos);
    const std::size_t line_start = json.rfind('\n', pos) + 1;
    const std::string line = json.substr(line_start, line_end - line_start);
    const std::string key_marker = "\"" + key + "\":";
    const std::size_t k = line.find(key_marker);
    if (k != std::string::npos) {
      std::size_t v = k + key_marker.size();
      std::size_t e = v;
      while (e < line.size() && line[e] != ',' && line[e] != '}') ++e;
      out.push_back(line.substr(v, e - v));
    }
    pos = line_end;
  }
  return out;
}

TEST(TraceScenario, FlowIdsAreUniqueAcrossVpsAndScenarios) {
  const std::string path = ::testing::TempDir() + "sigvp_trace_flow.json";
  trace::Tracer::enable(path);
  const auto jobs = fleet_jobs(3);
  run::SweepRunner(2).run(jobs);
  trace::Tracer* tracer = trace::Tracer::active();
  ASSERT_NE(tracer, nullptr);
  const std::string json = tracer->to_json();
  trace::Tracer::disable();
  std::remove(path.c_str());

  EXPECT_TRUE(JsonParser(json).valid());

  const auto begins = field_of_events(json, "s", "id");
  const auto ends = field_of_events(json, "f", "id");
  ASSERT_FALSE(begins.empty());
  const std::set<std::string> unique_begins(begins.begin(), begins.end());
  EXPECT_EQ(unique_begins.size(), begins.size())
      << "every job must open exactly one flow, even across VPs and scenarios";
  // Every flow that ends was begun (jobs still in flight at makespan end are
  // allowed to have no terminator, but not vice versa).
  for (const auto& id : ends) {
    EXPECT_TRUE(unique_begins.count(id)) << "flow_end without flow_begin, id=" << id;
  }
  // Flow begins span more than one pid (scenario) and more than one tid (VP).
  const auto pids = field_of_events(json, "s", "pid");
  const auto tids = field_of_events(json, "s", "tid");
  EXPECT_GT(std::set<std::string>(pids.begin(), pids.end()).size(), 1u);
  EXPECT_GT(std::set<std::string>(tids.begin(), tids.end()).size(), 1u);
}

TEST(TraceScenario, TraceDocumentHasPerVpTracksAndRoundTrips) {
  const std::string path = ::testing::TempDir() + "sigvp_trace_roundtrip.json";
  trace::Tracer::enable(path);
  const auto jobs = fleet_jobs(2);
  run::SweepRunner(1).run(jobs);
  trace::Tracer* tracer = trace::Tracer::active();
  ASSERT_NE(tracer, nullptr);
  ASSERT_GT(tracer->event_count(), 0u);
  const std::string json = tracer->to_json();
  EXPECT_TRUE(JsonParser(json).valid());

  // Named tracks: guest VPs, the dispatcher, the GPU engines, the transport.
  for (const char* track : {".guest", "sched.dispatcher", "gpu.compute", "gpu.copy-in",
                            "gpu.copy-out", "ipc.transport"}) {
    EXPECT_NE(json.find(track), std::string::npos) << track;
  }
  // The lifecycle stages of the tentpole: submit, queue, service, kernel.
  for (const char* name : {"submit:", "queue:", "service:", "\"cat\":\"gpu\""}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }

  // write() must emit exactly to_json() — the on-disk artifact IS the
  // in-memory document.
  ASSERT_TRUE(tracer->write());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), json);
  trace::Tracer::disable();
  std::remove(path.c_str());
}

TEST(TraceScenario, WriteFailureReturnsFalse) {
  const std::string path = "/nonexistent-dir/sigvp-trace.json";
  trace::Tracer::enable(path);
  trace::Tracer* tracer = trace::Tracer::active();
  ASSERT_NE(tracer, nullptr);
  EXPECT_FALSE(tracer->write());
  trace::Tracer::disable();
}

TEST(TraceWriter, TryWriteJsonFileReportsUnwritablePath) {
  EXPECT_FALSE(run::try_write_json_file("{}\n", "/nonexistent-dir/out.json"));
  const std::string ok = ::testing::TempDir() + "sigvp_trace_try_write.json";
  EXPECT_TRUE(run::try_write_json_file("{}\n", ok));
  std::remove(ok.c_str());
}

}  // namespace
}  // namespace sigvp
