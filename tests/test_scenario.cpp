#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "util/check.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

using workloads::AppTraits;
using workloads::Workload;

ScenarioConfig base_config(Backend backend) {
  ScenarioConfig cfg;
  cfg.backend = backend;
  cfg.mode = ExecMode::kAnalytic;
  return cfg;
}

/// The paper's Table 1 loop: per iteration, upload both inputs, run the
/// kernel once, download the result.
AppTraits table1_traits(std::uint64_t m, std::uint32_t iterations) {
  AppTraits t;
  t.iterations = iterations;
  t.launches_per_iter = 1;
  t.iter_h2d_bytes = 2 * 8 * m * m;
  t.iter_d2h_bytes = 8 * m * m;
  t.noncuda_guest_instrs = 0;
  t.coalescable = false;
  return t;
}

TEST(Scenario, Table1OrderingHolds) {
  const Workload w = workloads::make_matrix_mul();
  const std::uint64_t m = 320;
  AppInstance app{&w, m, table1_traits(m, 10)};

  const SimTime native = run_scenario(base_config(Backend::kNativeGpu), {app}).makespan_us;
  const SimTime sigma = run_scenario(base_config(Backend::kSigmaVp), {app}).makespan_us;
  const SimTime emul_cpu =
      run_scenario(base_config(Backend::kEmulationHostCpu), {app}).makespan_us;
  const SimTime emul_vp =
      run_scenario(base_config(Backend::kEmulationOnVp), {app}).makespan_us;

  // Paper Table 1 ordering: GPU < ΣVP << emul-on-CPU < emul-on-VP.
  EXPECT_LT(native, sigma);
  EXPECT_LT(sigma, emul_cpu);
  EXPECT_LT(emul_cpu, emul_vp);

  // ΣVP stays within a single-digit factor of native (paper: 3.32x)…
  EXPECT_LT(sigma / native, 10.0);
  // …while emulation on the VP is orders of magnitude slower (paper: 660x).
  EXPECT_GT(emul_vp / sigma, 100.0);
  // Binary translation slows the emulator by the calibrated ~41x.
  EXPECT_NEAR(emul_vp / emul_cpu, 32.86 * 1.247, 8.0);
}

TEST(Scenario, InterleavingOverlapsCopiesWithKernels) {
  // Two VPs looping {upload, kernel, download} — the Fig. 9 setup. The
  // interleaved dispatcher must beat the serial baseline.
  const Workload w = workloads::make_matrix_mul();
  const std::uint64_t m = 320;
  const auto apps = [&] {
    std::vector<AppInstance> v;
    for (int i = 0; i < 2; ++i) v.push_back(AppInstance{&w, m, table1_traits(m, 8)});
    return v;
  }();

  ScenarioConfig serial = base_config(Backend::kSigmaVp);
  ScenarioConfig inter = serial;
  inter.dispatch.interleave = true;

  const auto r_serial = run_scenario(serial, apps);
  const auto r_inter = run_scenario(inter, apps);
  EXPECT_LT(r_inter.makespan_us, r_serial.makespan_us);
}

TEST(Scenario, CoalescingMergesIdenticalKernels) {
  // Small per-VP launches (launch-overhead-bound), full optimized stack:
  // async cascades + interleaving + coalescing — the paper's Fig. 10/11
  // optimized configuration.
  const Workload w = workloads::make_vector_add();
  const auto apps = replicate(w, 4096, 8);

  ScenarioConfig plain = base_config(Backend::kSigmaVp);
  ScenarioConfig opt = plain;
  opt.dispatch.interleave = true;
  opt.dispatch.coalesce = true;
  opt.dispatch.coalesce_eager_peers = 7;  // homogeneous 8-VP fleet
  opt.async_launches = true;

  const auto r_plain = run_scenario(plain, apps);
  const auto r_opt = run_scenario(opt, apps);
  EXPECT_GT(r_opt.coalesced_groups, 0u);
  EXPECT_GT(r_opt.coalesced_jobs, r_opt.coalesced_groups);
  // Coalescing strips launch overhead and alignment waste: the GPU does
  // measurably less work and the fleet finishes sooner.
  EXPECT_LT(r_opt.gpu_compute_busy_us, r_plain.gpu_compute_busy_us);
  EXPECT_LT(r_opt.makespan_us, r_plain.makespan_us);
}

TEST(Scenario, SigmaVpCrushesEmulationOnVp) {
  // The Fig. 11 headline: multiplexing the host GPU beats software GPU
  // emulation on the VPs by orders of magnitude.
  const Workload w = workloads::make_black_scholes();
  const auto apps = replicate(w, w.default_n, 4);

  const SimTime emul = run_scenario(base_config(Backend::kEmulationOnVp), apps).makespan_us;
  const SimTime sigma = run_scenario(base_config(Backend::kSigmaVp), apps).makespan_us;
  EXPECT_GT(emul / sigma, 100.0);
}

TEST(Scenario, EmulationVpsContendForHostCores) {
  // VPs emulate concurrently (one guest CPU context each), but the Mesa-like
  // emulators oversubscribe the host cores: 4 VPs slow each other down by
  // the calibrated contention factor, not by 4x.
  const Workload w = workloads::make_vector_add();
  const SimTime one = run_scenario(base_config(Backend::kEmulationOnVp),
                                   replicate(w, w.default_n, 1))
                          .makespan_us;
  const SimTime four = run_scenario(base_config(Backend::kEmulationOnVp),
                                    replicate(w, w.default_n, 4))
                           .makespan_us;
  const double contention = Calibration{}.emulation_contention(4);
  EXPECT_NEAR(four / one, contention, 0.25);
  EXPECT_LT(four / one, 4.0);
}

TEST(Scenario, ResultFieldsPopulated) {
  const Workload w = workloads::make_vector_add();
  ScenarioConfig cfg = base_config(Backend::kSigmaVp);
  cfg.dispatch.interleave = true;
  const auto r = run_scenario(cfg, replicate(w, 1u << 16, 2));
  EXPECT_EQ(r.app_done_us.size(), 2u);
  EXPECT_GT(r.makespan_us, 0.0);
  EXPECT_GT(r.jobs_dispatched, 0u);
  EXPECT_GT(r.ipc_messages, 0u);
  EXPECT_GT(r.gpu_compute_busy_us, 0.0);
  EXPECT_GT(r.gpu_dynamic_energy_j, 0.0);
}

TEST(Scenario, RejectsMalformedInput) {
  EXPECT_THROW(run_scenario(ScenarioConfig{}, {}), ContractError);
  AppInstance bad;
  EXPECT_THROW(run_scenario(ScenarioConfig{}, {bad}), ContractError);
}

TEST(Scenario, BackendNamesDistinct) {
  EXPECT_EQ(backend_name(Backend::kNativeGpu), "native-gpu");
  EXPECT_EQ(backend_name(Backend::kSigmaVp), "sigma-vp");
  EXPECT_NE(backend_name(Backend::kEmulationOnVp), backend_name(Backend::kEmulationHostCpu));
}

TEST(Scenario, MixedWorkloadFleet) {
  const auto suite = workloads::make_suite();
  std::vector<AppInstance> apps;
  apps.push_back({&workloads::find(suite, "vectorAdd"), 1u << 16, std::nullopt});
  apps.push_back({&workloads::find(suite, "BlackScholes"), 1u << 16, std::nullopt});
  apps.push_back({&workloads::find(suite, "mergeSort"), 1u << 14, std::nullopt});
  ScenarioConfig cfg = base_config(Backend::kSigmaVp);
  cfg.dispatch.interleave = true;
  cfg.dispatch.coalesce = true;
  const auto r = run_scenario(cfg, apps);
  EXPECT_EQ(r.app_done_us.size(), 3u);
  // Different kernels must not coalesce with each other.
  EXPECT_EQ(r.coalesced_groups, 0u);
}

}  // namespace
}  // namespace sigvp
