#include <gtest/gtest.h>

#include <cmath>

#include "estimate/estimator.hpp"
#include "gpu/offline.hpp"
#include "mem/allocator.hpp"
#include "util/check.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

using workloads::Workload;

struct Measured {
  LaunchEvaluation host;
  LaunchEvaluation target;
  LaunchDims dims;
  MemoryBehavior behavior;
};

/// Runs `w` functionally on both a host arch and the target arch over the
/// same inputs, as the Fig. 12/13 experiments do.
Measured measure(const Workload& w, std::uint64_t n, const GpuArch& host,
                 const GpuArch& target) {
  Measured out;
  out.dims = w.dims(n);
  out.behavior = w.behavior(n);

  auto run_on = [&](const GpuArch& arch) {
    AddressSpace mem(512ull * 1024 * 1024, "m");
    FreeListAllocator alloc(4096, mem.size() - 4096);
    std::vector<std::uint64_t> addrs;
    for (const auto& b : w.buffers(n)) {
      addrs.push_back(*alloc.allocate(b.bytes));
    }
    const auto bufs = w.buffers(n);
    for (std::size_t i = 0; i < bufs.size(); ++i) {
      if (!bufs[i].is_input) continue;
      for (std::uint64_t off = 0; off + 4 <= bufs[i].bytes; off += 4) {
        AddressSpace* m = &mem;
        m->write<float>(addrs[i] + off, 0.75f);
      }
    }
    return evaluate_functional(arch, w.kernel, out.dims, w.args(addrs, n), mem);
  };
  out.host = run_on(host);
  out.target = run_on(target);
  return out;
}

EstimationInput input_from(const Measured& m, const Workload& w) {
  EstimationInput in;
  in.kernel = &w.kernel;
  in.dims = m.dims;
  in.lambda = m.host.profile.block_visits;
  in.host_stats = m.host.stats;
  in.behavior = m.behavior;
  return in;
}

TEST(CompileSigma, AppliesPerBlockExpansion) {
  const Workload w = workloads::make_vector_add();
  const DynamicProfile p = w.profile(1024);
  const ClassCounts generic =
      ProfileBasedEstimator::compile_sigma(w.kernel, p.block_visits, make_quadro4000());
  const ClassCounts tegra =
      ProfileBasedEstimator::compile_sigma(w.kernel, p.block_visits, make_tegrak1());
  EXPECT_EQ(generic, p.instr_counts);  // Quadro = reference ISA, expansion 1.0
  EXPECT_GT(tegra[InstrClass::kInt], generic[InstrClass::kInt]);
  EXPECT_EQ(tegra[InstrClass::kFp32], generic[InstrClass::kFp32]);
}

TEST(CompileSigma, RejectsMismatchedLambda) {
  const Workload w = workloads::make_vector_add();
  EXPECT_THROW(ProfileBasedEstimator::compile_sigma(w.kernel, {1, 2}, make_quadro4000()),
               ContractError);
}

TEST(Upsilon, LargerFootprintMoreStalls) {
  const GpuArch t = make_tegrak1();
  LaunchDims d;
  d.block_x = 256;
  d.grid_x = 64;
  const double small_fp =
      ProfileBasedEstimator::upsilon_data(t, d, MemoryBehavior{64 * 1024, 100000, 0.5, 0.9});
  const double large_fp = ProfileBasedEstimator::upsilon_data(
      t, d, MemoryBehavior{64 * 1024 * 1024, 100000, 0.5, 0.9});
  EXPECT_LT(small_fp, large_fp);
}

class EstimatorAccuracy
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(EstimatorAccuracy, CdoublePrimeTracksObservedTargetTime) {
  const auto& [host_name, app] = GetParam();
  const GpuArch host = host_name == "quadro" ? make_quadro4000() : make_gridk520();
  const GpuArch target = make_tegrak1();

  const auto suite = workloads::make_suite();
  const Workload& w = workloads::find(suite, app);
  const std::uint64_t n_est = w.estimate_n ? w.estimate_n : w.test_n;
  const Measured m = measure(w, n_est, host, target);

  ProfileBasedEstimator est(host, target);
  const TimingEstimates t = est.estimate_time(input_from(m, w));

  const double observed = m.target.stats.total_cycles;
  ASSERT_GT(observed, 0.0);

  // The refined estimate lands near the observed target execution
  // (paper Fig. 12: estimates cluster around 1.0 of the measured value).
  EXPECT_NEAR(t.c2_cycles / observed, 1.0, 0.45) << app << " on " << host_name;

  // And the estimates are ordered by refinement: C is the crudest.
  const double err_c = std::abs(t.c_cycles / observed - 1.0);
  const double err_c2 = std::abs(t.c2_cycles / observed - 1.0);
  EXPECT_LE(err_c2, err_c + 0.05) << app << " on " << host_name;
}

TEST_P(EstimatorAccuracy, PowerEstimateWithinBand) {
  const auto& [host_name, app] = GetParam();
  const GpuArch host = host_name == "quadro" ? make_quadro4000() : make_gridk520();
  const GpuArch target = make_tegrak1();

  const auto suite = workloads::make_suite();
  const Workload& w = workloads::find(suite, app);
  const std::uint64_t n_est = w.estimate_n ? w.estimate_n : w.test_n;
  const Measured m = measure(w, n_est, host, target);

  ProfileBasedEstimator est(host, target);
  const TimingEstimates t = est.estimate_time(input_from(m, w));
  const double p_est = est.estimate_power_w(input_from(m, w), t);

  // Observed power on the target device model: static + dynamic/duration
  // over the kernel's busy window.
  const double kernel_us = m.target.stats.duration_us - target.launch_overhead_us;
  const double p_obs =
      target.static_power_w + m.target.stats.dynamic_energy_j / s_from_us(kernel_us);

  EXPECT_GT(p_est, target.static_power_w);
  // Paper Fig. 13: estimates within ≈10% of measurement; allow extra slack
  // because our observation is itself a model.
  EXPECT_NEAR(p_est / p_obs, 1.0, 0.30) << app << " on " << host_name;
}

INSTANTIATE_TEST_SUITE_P(
    Fig12Apps, EstimatorAccuracy,
    ::testing::Combine(::testing::Values("quadro", "k520"),
                       ::testing::Values("BlackScholes", "matrixMul", "dct8x8", "Mandelbrot")),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

TEST(Estimator, HostAgnosticism) {
  // The estimates for the same kernel must be close no matter which host GPU
  // supplied the profile (the paper's key claim about Fig. 12).
  const auto suite = workloads::make_suite();
  const Workload& w = workloads::find(suite, "BlackScholes");
  const GpuArch target = make_tegrak1();

  const Measured mq = measure(w, w.test_n, make_quadro4000(), target);
  const Measured mk = measure(w, w.test_n, make_gridk520(), target);
  const TimingEstimates tq =
      ProfileBasedEstimator(make_quadro4000(), target).estimate_time(input_from(mq, w));
  const TimingEstimates tk =
      ProfileBasedEstimator(make_gridk520(), target).estimate_time(input_from(mk, w));
  EXPECT_NEAR(tq.c2_cycles / tk.c2_cycles, 1.0, 0.30);
  // σ{K,T} must be exactly host-independent: it only uses λ and µ(T).
  EXPECT_EQ(tq.sigma_target, tk.sigma_target);
}

TEST(Estimator, RequiresHostMeasurement) {
  const auto suite = workloads::make_suite();
  const Workload& w = workloads::find(suite, "vectorAdd");
  ProfileBasedEstimator est(make_quadro4000(), make_tegrak1());
  EstimationInput in;
  in.kernel = &w.kernel;
  in.dims = w.dims(w.test_n);
  in.lambda = w.profile(w.test_n).block_visits;
  EXPECT_THROW(est.estimate_time(in), ContractError);
}

TEST(Estimator, TargetSlowerThanHost) {
  // Tegra K1 (1 SMX) should be estimated much slower than what the 8-SM
  // hosts measured — the basic sanity the paper's Fig. 12 bars show.
  const auto suite = workloads::make_suite();
  const Workload& w = workloads::find(suite, "BlackScholes");
  const Measured m = measure(w, w.test_n, make_quadro4000(), make_tegrak1());
  ProfileBasedEstimator est(make_quadro4000(), make_tegrak1());
  const TimingEstimates t = est.estimate_time(input_from(m, w));
  const double host_us = us_from_cycles(m.host.stats.total_cycles, make_quadro4000().clock_ghz);
  EXPECT_GT(t.et_c2_us, host_us);
}

}  // namespace
}  // namespace sigvp
