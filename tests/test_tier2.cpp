// Differential battery for the Tier-2 threaded-code engine (DESIGN.md §15):
// for every workload in the suite the Tier-2 memory image and DynamicProfile
// must be byte-exact vs the Tier-1 interpreter at every worker count; the
// promotion decision must be a pure function of the sim-domain launch stream
// (identical across worker counts and across resume-from-checkpoint); cold,
// atomic, hooked and strict-barrier launches must route back to Tier 1; an
// in-place kernel rebuild must re-lower through the fingerprint; and the
// SIGVP_TIER_VERIFY oracle must pass cleanly on the whole suite.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "interp/decoded.hpp"
#include "interp/interpreter.hpp"
#include "interp/tier2.hpp"
#include "ir/builder.hpp"
#include "mem/allocator.hpp"
#include "run/sweep.hpp"
#include "snapshot/io.hpp"
#include "snapshot/serial.hpp"
#include "snapshot/state.hpp"
#include "util/check.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

namespace fs = std::filesystem;
using workloads::Workload;

constexpr std::uint64_t kSpace = 64ull * 1024 * 1024;

/// The tier engine is a process-wide singleton; every test that touches it
/// runs inside a sandbox that starts from a clean slate and restores the
/// entry mode/verify flag plus the default knobs on exit, so test order
/// never leaks tier state (into this binary or the tests around it).
struct EngineSandbox {
  Tier2Engine::Mode mode;
  bool verify;
  EngineSandbox()
      : mode(Tier2Engine::instance().mode()), verify(Tier2Engine::instance().verify()) {
    Tier2Engine::instance().reset();
  }
  ~EngineSandbox() {
    Tier2Engine& e = Tier2Engine::instance();
    e.set_mode(mode);
    e.set_verify(verify);
    e.set_promotion(Tier2Engine::kDefaultMinStaticHeat, Tier2Engine::kDefaultWarmupLaunches);
    e.set_capacity(Tier2Engine::kDefaultMaxEntries, Tier2Engine::kDefaultMaxBytes);
    e.reset();
  }
};

struct RunResult {
  std::vector<std::uint8_t> memory;
  DynamicProfile profile;
};

/// Fresh memory, deterministic inputs, one launch at `w.test_n` under the
/// given tier mode and worker count; returns memory image + profile.
RunResult run_workload(const Workload& w, std::size_t workers, Tier2Engine::Mode mode,
                       Interpreter::Options options = {}) {
  Tier2Engine::instance().set_mode(mode);
  AddressSpace mem(kSpace, "m");
  FreeListAllocator alloc(4096, mem.size() - 4096);
  const auto bufs = w.buffers(w.test_n);
  std::vector<std::uint64_t> addrs;
  for (const auto& b : bufs) {
    const auto a = alloc.allocate(b.bytes);
    EXPECT_TRUE(a.has_value()) << w.app;
    addrs.push_back(*a);
  }
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    if (!bufs[i].is_input) continue;
    for (std::uint64_t off = 0; off + 4 <= bufs[i].bytes; off += 4) {
      mem.write<float>(addrs[i] + off, 0.5f);
    }
  }

  Interpreter interp;
  options.workers = workers;
  RunResult out;
  out.profile = interp.run(w.kernel, w.dims(w.test_n), w.args(addrs, w.test_n), mem, options);
  out.memory.resize(mem.size());
  mem.copy_out(out.memory.data(), 0, out.memory.size());
  return out;
}

void expect_profiles_identical(const DynamicProfile& a, const DynamicProfile& b,
                               const std::string& label) {
  EXPECT_EQ(a.block_visits, b.block_visits) << label;
  EXPECT_EQ(a.instr_counts, b.instr_counts) << label;
  EXPECT_EQ(a.global_load_bytes, b.global_load_bytes) << label;
  EXPECT_EQ(a.global_store_bytes, b.global_store_bytes) << label;
  EXPECT_EQ(a.barriers_waited, b.barriers_waited) << label;
  EXPECT_EQ(a.sfu_instrs, b.sfu_instrs) << label;
  EXPECT_EQ(a.sqrt_instrs, b.sqrt_instrs) << label;
}

// --- suite-wide tier differential ---------------------------------------------

class Tier2DifferentialTest : public ::testing::TestWithParam<std::string> {
 protected:
  static const std::vector<Workload>& suite() {
    static const std::vector<Workload> s = workloads::make_suite();
    return s;
  }
  const Workload& workload() const { return workloads::find(suite(), GetParam()); }
};

TEST_P(Tier2DifferentialTest, MemoryAndProfileByteExactVsTier1AtEveryWorkerCount) {
  EngineSandbox sandbox;
  const Workload& w = workload();
  const RunResult t1 = run_workload(w, 1, Tier2Engine::Mode::kForceTier1);
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    const RunResult t2 = run_workload(w, workers, Tier2Engine::Mode::kForceTier2);
    const std::string label = w.app + " tier2 @ workers=" + std::to_string(workers);
    EXPECT_TRUE(t2.memory == t1.memory) << label << ": memory image diverged";
    expect_profiles_identical(t1.profile, t2.profile, label);
  }
}

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const auto& w : workloads::make_suite()) names.push_back(w.app);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Suite, Tier2DifferentialTest, ::testing::ValuesIn(all_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return n;
                         });

// --- budget exhaustion --------------------------------------------------------

TEST(Tier2Differential, BudgetExhaustionThrowsAtTheSamePointWithTheSameSideEffects) {
  EngineSandbox sandbox;
  const auto suite = workloads::make_suite();
  const Workload& w = workloads::find(suite, "matrixMul");
  // Budgets inside the vector prologue (1), mid-prologue (3) and mid-loop:
  // Tier 2 must throw the identical ContractError with the identical partial
  // memory image (serial execution so the partial state is deterministic).
  const auto run_with_budget = [&w](Tier2Engine::Mode mode, std::uint64_t budget,
                                    std::vector<std::uint8_t>& memory) {
    Tier2Engine::instance().set_mode(mode);
    AddressSpace mem(kSpace, "m");
    FreeListAllocator alloc(4096, mem.size() - 4096);
    const auto bufs = w.buffers(w.test_n);
    std::vector<std::uint64_t> addrs;
    for (const auto& b : bufs) addrs.push_back(*alloc.allocate(b.bytes));
    for (std::size_t i = 0; i < bufs.size(); ++i) {
      if (!bufs[i].is_input) continue;
      for (std::uint64_t off = 0; off + 4 <= bufs[i].bytes; off += 4) {
        mem.write<float>(addrs[i] + off, 0.5f);
      }
    }
    Interpreter::Options opts;
    opts.max_instrs_per_thread = budget;
    opts.workers = 1;
    std::string what;
    try {
      Interpreter().run(w.kernel, w.dims(w.test_n), w.args(addrs, w.test_n), mem, opts);
    } catch (const ContractError& e) {
      what = e.what();
    }
    memory.resize(mem.size());
    mem.copy_out(memory.data(), 0, memory.size());
    return what;
  };
  for (const std::uint64_t budget : {1ull, 3ull, 17ull, 200ull}) {
    SCOPED_TRACE("budget=" + std::to_string(budget));
    std::vector<std::uint8_t> mem1, mem2;
    const std::string what1 = run_with_budget(Tier2Engine::Mode::kForceTier1, budget, mem1);
    const std::string what2 = run_with_budget(Tier2Engine::Mode::kForceTier2, budget, mem2);
    EXPECT_TRUE(mem1 == mem2) << "partial memory image diverged";
    // The REQUIRE preamble embeds the throw site (file:line), which rightly
    // differs between tiers — compare the kernel-facing message after it.
    const auto msg = [](const std::string& what) {
      const std::size_t dash = what.find("\xE2\x80\x94");
      return dash == std::string::npos ? what : what.substr(dash);
    };
    EXPECT_FALSE(what1.empty());
    EXPECT_FALSE(what2.empty());
    EXPECT_EQ(msg(what1), msg(what2));
  }
}

// --- promotion policy ---------------------------------------------------------

TEST(Tier2Promotion, WarmupOrdinalGatesTheFirstLaunchesPerKey) {
  EngineSandbox sandbox;
  Tier2Engine& eng = Tier2Engine::instance();
  eng.set_mode(Tier2Engine::Mode::kAuto);
  eng.set_promotion(/*min_static_heat=*/1, /*warmup_launches=*/2);
  const auto suite = workloads::make_suite();
  const Workload& w = workloads::find(suite, "vectorAdd");

  const Tier2Stats before = eng.stats();
  for (int i = 0; i < 3; ++i) run_workload(w, 1, Tier2Engine::Mode::kAuto);
  const Tier2Stats d = eng.stats() - before;
  EXPECT_EQ(d.launches_warming, 2u);  // launches 1 and 2 warm the key
  EXPECT_EQ(d.launches_tier2, 1u);    // launch 3 promotes
  EXPECT_EQ(d.compiles, 1u);          // lowered exactly once
  EXPECT_EQ(d.launches_tier1, 0u);
}

TEST(Tier2Promotion, ColdKernelsStayOnTier1WithoutCompiling) {
  EngineSandbox sandbox;
  Tier2Engine& eng = Tier2Engine::instance();
  eng.set_mode(Tier2Engine::Mode::kAuto);
  eng.set_promotion(/*min_static_heat=*/~0ull, /*warmup_launches=*/0);
  const auto suite = workloads::make_suite();
  const Workload& w = workloads::find(suite, "vectorAdd");

  const Tier2Stats before = eng.stats();
  run_workload(w, 1, Tier2Engine::Mode::kAuto);
  const Tier2Stats d = eng.stats() - before;
  EXPECT_EQ(d.launches_tier1, 1u);
  EXPECT_EQ(d.launches_tier2, 0u);
  EXPECT_EQ(d.compiles, 0u);  // never lowered: cold code costs nothing
}

TEST(Tier2Promotion, DecisionStreamIsIdenticalAcrossWorkerCounts) {
  // The tier decision is a pure function of the sim-domain launch stream:
  // replaying the same launches at a different worker count must produce the
  // identical stats delta (DESIGN.md §15 determinism contract).
  EngineSandbox sandbox;
  Tier2Engine& eng = Tier2Engine::instance();
  eng.set_mode(Tier2Engine::Mode::kAuto);
  const auto suite = workloads::make_suite();
  const std::vector<const Workload*> seq = {
      &workloads::find(suite, "vectorAdd"), &workloads::find(suite, "matrixMul"),
      &workloads::find(suite, "reduction"), &workloads::find(suite, "histogram")};

  std::vector<Tier2Stats> deltas;
  for (const std::size_t workers : {1u, 8u}) {
    eng.reset();
    const Tier2Stats before = eng.stats();
    for (int round = 0; round < 2; ++round) {
      for (const Workload* w : seq) run_workload(*w, workers, Tier2Engine::Mode::kAuto);
    }
    deltas.push_back(eng.stats() - before);
  }
  EXPECT_EQ(deltas[0], deltas[1]);
  EXPECT_EQ(deltas[0].launches_tier2 + deltas[0].launches_warming +
                deltas[0].launches_tier1,
            2u * seq.size());
}

// --- fallback routing ---------------------------------------------------------

TEST(Tier2Fallback, GlobalAtomicsRouteToTier1EvenWhenForced) {
  EngineSandbox sandbox;
  Tier2Engine& eng = Tier2Engine::instance();
  const auto suite = workloads::make_suite();
  const Workload& w = workloads::find(suite, "histogram");  // global atomics

  const Tier2Stats before = eng.stats();
  run_workload(w, 1, Tier2Engine::Mode::kForceTier2);
  const Tier2Stats d = eng.stats() - before;
  EXPECT_EQ(d.launches_tier1, 1u);
  EXPECT_EQ(d.launches_tier2, 0u);
  EXPECT_EQ(d.compiles, 0u);
}

TEST(Tier2Fallback, LegacyMemHookRoutesToTier1) {
  EngineSandbox sandbox;
  Tier2Engine& eng = Tier2Engine::instance();
  const auto suite = workloads::make_suite();
  const Workload& w = workloads::find(suite, "vectorAdd");

  std::uint64_t accesses = 0;
  Interpreter::Options opts;
  opts.mem_hook = [&accesses](std::uint64_t, std::uint32_t, bool) { ++accesses; };
  const Tier2Stats before = eng.stats();
  run_workload(w, 1, Tier2Engine::Mode::kForceTier2, opts);
  const Tier2Stats d = eng.stats() - before;
  EXPECT_EQ(d.launches_tier1, 1u);
  EXPECT_EQ(d.launches_tier2, 0u);
  EXPECT_GT(accesses, 0u);  // the hook really observed the Tier-1 run
}

TEST(Tier2Fallback, StrictBarrierDiagnosticsRouteToTier1) {
  EngineSandbox sandbox;
  Tier2Engine& eng = Tier2Engine::instance();
  const auto suite = workloads::make_suite();
  const Workload& w = workloads::find(suite, "reduction");  // barriers, uniform

  Interpreter::Options opts;
  opts.strict_barriers = true;
  const Tier2Stats before = eng.stats();
  run_workload(w, 1, Tier2Engine::Mode::kForceTier2, opts);
  const Tier2Stats d = eng.stats() - before;
  EXPECT_EQ(d.launches_tier1, 1u);
  EXPECT_EQ(d.launches_tier2, 0u);
}

// --- fingerprint invalidation -------------------------------------------------

KernelIR make_store_const_kernel(std::int64_t value) {
  KernelBuilder b("t2mut", 1);
  const auto out = b.reg(), v = b.reg();
  b.block("entry");
  b.ld_param(out, 0);
  b.mov_imm_i(v, value);
  b.st_global_i64(v, out);
  b.ret();
  return b.build();
}

TEST(Tier2Promotion, InPlaceKernelRebuildRelowersThroughTheFingerprint) {
  EngineSandbox sandbox;
  Tier2Engine& eng = Tier2Engine::instance();
  eng.set_mode(Tier2Engine::Mode::kAuto);
  eng.set_promotion(/*min_static_heat=*/0, /*warmup_launches=*/0);  // promote instantly

  KernelIR ir = make_store_const_kernel(111);
  AddressSpace mem(1 << 16, "m");
  KernelArgs args;
  args.push_ptr(64);

  const Tier2Stats before = eng.stats();
  Interpreter().run(ir, LaunchDims{}, args, mem);
  EXPECT_EQ(mem.read<std::int64_t>(64), 111);
  EXPECT_EQ((eng.stats() - before).compiles, 1u);

  // Rebuild the kernel in place (same KernelIR object, different body): the
  // next launch must execute the NEW body through a fresh lowering, not the
  // stale Tier-2 code cached under the old fingerprint.
  const KernelIR next = make_store_const_kernel(222);
  ir.blocks = next.blocks;
  Interpreter().run(ir, LaunchDims{}, args, mem);
  EXPECT_EQ(mem.read<std::int64_t>(64), 222);
  EXPECT_EQ((eng.stats() - before).compiles, 2u);

  // Same fingerprint again: cached, no third compile.
  Interpreter().run(ir, LaunchDims{}, args, mem);
  EXPECT_EQ((eng.stats() - before).compiles, 2u);
}

// --- SIGVP_TIER_VERIFY oracle -------------------------------------------------

TEST(Tier2Verify, OracleRunsCleanOnSuiteKernels) {
  EngineSandbox sandbox;
  Tier2Engine& eng = Tier2Engine::instance();
  eng.set_verify(true);
  const auto suite = workloads::make_suite();

  const Tier2Stats before = eng.stats();
  const RunResult t2 = run_workload(workloads::find(suite, "matrixMul"), 4,
                                    Tier2Engine::Mode::kForceTier2);
  run_workload(workloads::find(suite, "convolutionSeparable"), 4,
               Tier2Engine::Mode::kForceTier2);
  const Tier2Stats d = eng.stats() - before;
  EXPECT_EQ(d.verify_launches, 2u);  // both launches were cross-checked

  // And the verified result still matches a plain Tier-1 run.
  eng.set_verify(false);
  const RunResult t1 = run_workload(workloads::find(suite, "matrixMul"), 1,
                                    Tier2Engine::Mode::kForceTier1);
  EXPECT_TRUE(t1.memory == t2.memory);
  expect_profiles_identical(t1.profile, t2.profile, "verify smoke");
}

TEST(Tier2Verify, DivergenceCheckerAcceptsIdenticalAndRejectsPerturbed) {
  using interp_detail::check_tier_divergence;
  const auto suite = workloads::make_suite();
  const Workload& w = workloads::find(suite, "vectorAdd");
  EngineSandbox sandbox;
  const RunResult r = run_workload(w, 1, Tier2Engine::Mode::kForceTier1);

  AddressSpace a(1 << 20, "a"), b(1 << 20, "b");
  EXPECT_NO_THROW(check_tier_divergence(w.kernel, r.profile, r.profile, a, b));

  DynamicProfile bad = r.profile;
  bad.global_store_bytes += 4;
  EXPECT_THROW(check_tier_divergence(w.kernel, r.profile, bad, a, b), ContractError);

  b.write<std::uint8_t>(12345, 0xAB);  // one flipped byte in the memory image
  EXPECT_THROW(check_tier_divergence(w.kernel, r.profile, r.profile, a, b), ContractError);
}

// --- bounded DecodedCache (Tier-1 decode cache) -------------------------------

TEST(DecodedCacheBound, FifoEvictionKeepsTheCacheWithinItsCaps) {
  using interp_detail::DecodedCache;
  DecodedCache& cache = DecodedCache::instance();
  cache.clear();
  cache.set_capacity(/*max_entries=*/2, DecodedCache::kDefaultMaxBytes);

  const KernelIR k1 = make_store_const_kernel(1);
  const KernelIR k2 = make_store_const_kernel(2);
  const KernelIR k3 = make_store_const_kernel(3);
  const std::uint64_t evictions0 = cache.evictions();

  const auto p1 = cache.get(k1);
  const auto p2 = cache.get(k2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), evictions0);

  const auto p3 = cache.get(k3);  // over cap: k1 (FIFO head) is evicted
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), evictions0 + 1);
  EXPECT_NE(p3, nullptr);
  // The evicted program stays alive through the returned shared_ptr, and a
  // re-get simply re-decodes.
  const auto p1b = cache.get(k1);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), evictions0 + 2);
  EXPECT_EQ(p1->fingerprint, p1b->fingerprint);

  // Byte cap alone also evicts: a cap smaller than any program empties the
  // FIFO on every insert while the caller's shared_ptr stays valid.
  cache.set_capacity(DecodedCache::kDefaultMaxEntries, /*max_bytes=*/1);
  const auto p2b = cache.get(k2);
  EXPECT_NE(p2b, nullptr);
  EXPECT_EQ(cache.size(), 0u);

  cache.set_capacity(DecodedCache::kDefaultMaxEntries, DecodedCache::kDefaultMaxBytes);
  cache.clear();
}

// --- promotion across resume-from-checkpoint ----------------------------------

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("sigvp_tier2_test_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

std::vector<std::vector<std::uint8_t>> sweep_bytes(const run::SweepResult& r) {
  std::vector<std::vector<std::uint8_t>> out;
  for (const auto& j : r.jobs) {
    snapshot::Writer w;
    snapshot::save_scenario_result(w, j.result);
    out.push_back(w.take());
  }
  return out;
}

run::SweepJob functional_job(const Workload& w, const char* name, std::size_t vps) {
  run::SweepJob job;
  job.name = name;
  job.group = w.app;
  job.config.mode = ExecMode::kFunctional;
  job.config.functional_io = true;
  job.config.gpu_mem_bytes = 16ull * 1024 * 1024;  // keep fleet captures small
  workloads::AppTraits t = w.traits;
  t.iterations = 1;
  for (std::size_t i = 0; i < vps; ++i) {
    AppInstance a;
    a.workload = &w;
    a.n = w.test_n;
    a.traits = t;
    job.apps.push_back(std::move(a));
  }
  return job;
}

TEST(Tier2Promotion, ResumedSweepIsBitIdenticalDespiteColdTierState) {
  // A resumed process starts with an empty lowered cache and zeroed warmup
  // ordinals, so the re-run jobs make *different* tier decisions than the
  // uninterrupted run did at the same point in the stream. The results must
  // not care: tier choice is invisible in the sim domain.
  EngineSandbox sandbox;
  Tier2Engine& eng = Tier2Engine::instance();
  eng.set_mode(Tier2Engine::Mode::kAuto);
  const auto suite = workloads::make_suite();
  std::vector<run::SweepJob> jobs;
  jobs.push_back(functional_job(workloads::find(suite, "vectorAdd"), "t2-va", 2));
  jobs.push_back(functional_job(workloads::find(suite, "reduction"), "t2-red", 2));

  eng.reset();
  const auto golden = sweep_bytes(run::SweepRunner(2).run(jobs));

  const TempDir tmp("resume");
  run::SweepSnapshotOptions snap;
  snap.dir = tmp.str();
  snap.every_us = 300.0;
  eng.reset();
  run::SweepResumeInfo cold;
  EXPECT_EQ(sweep_bytes(run::SweepRunner(2).run(jobs, snap, &cold)), golden);
  EXPECT_TRUE(cold.resumed_from.empty());

  // Craft the checkpoint a crash between the two jobs would leave: job 0
  // finished (splice), job 1 untouched (fresh run in the resumed process).
  snapshot::CheckpointStore store(tmp.str());
  ASSERT_FALSE(store.find_latest_valid().path.empty());
  snapshot::SweepCheckpoint cp = snapshot::decode_sweep_checkpoint(
      snapshot::load_snapshot_file(store.find_latest_valid().path));
  ASSERT_EQ(cp.jobs.size(), 2u);
  cp.jobs[1] = snapshot::JobCheckpoint{};
  snapshot::CheckpointStore(tmp.str()).publish(snapshot::encode_sweep_checkpoint(cp));

  eng.reset();  // the process restart loses all warm tier state
  run::SweepResumeInfo ri;
  const run::SweepResult resumed = run::SweepRunner(2).run(jobs, snap, &ri);
  EXPECT_EQ(ri.jobs_resumed, 1u);
  EXPECT_FALSE(ri.resumed_from.empty());
  EXPECT_EQ(sweep_bytes(resumed), golden);
}

}  // namespace
}  // namespace sigvp
