#include <gtest/gtest.h>

#include "gpu/arch.hpp"
#include "gpu/cost_model.hpp"
#include "util/check.hpp"

namespace sigvp {
namespace {

ClassCounts fp32_sigma(std::uint64_t total_threads, std::uint64_t per_thread) {
  ClassCounts s;
  s[InstrClass::kFp32] = total_threads * per_thread;
  return s;
}

LaunchDims dims_blocks(std::uint32_t blocks, std::uint32_t tpb = 512) {
  LaunchDims d;
  d.block_x = tpb;
  d.grid_x = blocks;
  return d;
}

TEST(Arch, DerivedQuantities) {
  const GpuArch q = make_quadro4000();
  EXPECT_DOUBLE_EQ(q.max_ipc(), 8 * 32.0);
  EXPECT_DOUBLE_EQ(q.warp_cpi(InstrClass::kFp32), 1.0);
  EXPECT_DOUBLE_EQ(q.warp_cpi(InstrClass::kFp64), 2.0);
  EXPECT_DOUBLE_EQ(q.warp_cpi(InstrClass::kLoad), 2.0);

  const GpuArch k = make_gridk520();
  EXPECT_DOUBLE_EQ(k.max_ipc(), 8 * 192.0);
  EXPECT_DOUBLE_EQ(k.warp_cpi(InstrClass::kFp64), 4.0);

  const GpuArch t = make_tegrak1();
  EXPECT_DOUBLE_EQ(t.max_ipc(), 192.0);
  EXPECT_EQ(t.num_sms, 1u);
}

TEST(Arch, ConcurrentBlocksRespectOccupancyLimits) {
  const GpuArch q = make_quadro4000();  // 1536 threads/SM, 8 blocks/SM
  EXPECT_EQ(q.concurrent_blocks_per_sm(512), 3u);
  EXPECT_EQ(q.concurrent_blocks_per_sm(64), 8u);   // capped by max_blocks_per_sm
  EXPECT_EQ(q.concurrent_blocks_per_sm(2048), 1u); // at least one block resident
  EXPECT_EQ(q.concurrent_blocks(512), 24u);
}

TEST(CostModel, WaveQuantizationProducesStaircase) {
  // The paper's Fig. 10(b): grids that round to the same wave count take the
  // same time; one block more than a full wave adds a whole step.
  const GpuArch q = make_quadro4000();
  const KernelCostModel model(q);
  const std::uint64_t per_thread = 200;

  auto cycles = [&](std::uint32_t blocks) {
    const LaunchDims d = dims_blocks(blocks);
    return model.evaluate(d, fp32_sigma(d.total_threads(), per_thread), CacheStats{})
        .issue_cycles;
  };
  EXPECT_DOUBLE_EQ(cycles(9), cycles(16));   // both: 2 waves of 8 SMs
  EXPECT_DOUBLE_EQ(cycles(1), cycles(8));    // both: 1 wave
  EXPECT_GT(cycles(17), cycles(16));         // 3rd wave begins
  EXPECT_NEAR(cycles(16) / cycles(8), 2.0, 1e-9);
}

TEST(CostModel, Fp64CostsMoreThanFp32) {
  const GpuArch q = make_quadro4000();
  const KernelCostModel model(q);
  const LaunchDims d = dims_blocks(8);
  ClassCounts fp32, fp64;
  fp32[InstrClass::kFp32] = d.total_threads() * 100;
  fp64[InstrClass::kFp64] = d.total_threads() * 100;
  EXPECT_GT(model.evaluate(d, fp64, CacheStats{}).issue_cycles,
            model.evaluate(d, fp32, CacheStats{}).issue_cycles);
}

TEST(CostModel, CacheMissesAddDataStalls) {
  const GpuArch q = make_quadro4000();
  const KernelCostModel model(q);
  const LaunchDims d = dims_blocks(8);
  const ClassCounts sigma = fp32_sigma(d.total_threads(), 50);
  CacheStats none{1000, 1000, 0};
  CacheStats many{1000, 0, 1000};
  const auto s_none = model.evaluate(d, sigma, none);
  const auto s_many = model.evaluate(d, sigma, many);
  EXPECT_DOUBLE_EQ(s_none.stall_cycles_data, 0.0);
  EXPECT_GT(s_many.stall_cycles_data, 0.0);
  EXPECT_GT(s_many.total_cycles, s_none.total_cycles);
}

TEST(CostModel, BandwidthBoundKicksInForManyMisses) {
  const GpuArch q = make_quadro4000();
  const LaunchDims d = dims_blocks(1024);
  // Latency term shrinks with SM parallelism and hiding; for a huge miss
  // count the DRAM bandwidth bound must dominate.
  const double misses = 1e7;
  const double stalls = KernelCostModel::exposed_data_stalls(q, d, misses);
  const double bw_cycles = misses * q.l2.line_bytes / (q.mem_bandwidth_gbps / q.clock_ghz);
  EXPECT_GE(stalls, bw_cycles * 0.999);
}

TEST(CostModel, MoreSmsMeansFewerCycles) {
  GpuArch one_sm = make_quadro4000();
  one_sm.num_sms = 1;
  const GpuArch eight = make_quadro4000();
  const LaunchDims d = dims_blocks(64);
  const ClassCounts sigma = fp32_sigma(d.total_threads(), 100);
  const double c1 = KernelCostModel(one_sm).evaluate(d, sigma, CacheStats{}).total_cycles;
  const double c8 = KernelCostModel(eight).evaluate(d, sigma, CacheStats{}).total_cycles;
  EXPECT_NEAR(c1 / c8, 8.0, 0.5);
}

TEST(CostModel, DurationIncludesLaunchOverhead) {
  const GpuArch q = make_quadro4000();
  const KernelCostModel model(q);
  const LaunchDims d = dims_blocks(1, 32);
  ClassCounts tiny;
  tiny[InstrClass::kInt] = 32;
  const auto s = model.evaluate(d, tiny, CacheStats{});
  EXPECT_GE(s.duration_us, q.launch_overhead_us);
}

TEST(CostModel, EnergyScalesWithInstructionCount) {
  const GpuArch q = make_quadro4000();
  const KernelCostModel model(q);
  const LaunchDims d = dims_blocks(8);
  const auto s1 = model.evaluate(d, fp32_sigma(d.total_threads(), 10), CacheStats{});
  const auto s2 = model.evaluate(d, fp32_sigma(d.total_threads(), 100), CacheStats{});
  EXPECT_NEAR(s2.dynamic_energy_j / s1.dynamic_energy_j, 10.0, 0.01);
}

TEST(CostModel, CompileExpansionInflatesSigma) {
  GpuArch t = make_tegrak1();
  const KernelCostModel model(t);
  const LaunchDims d = dims_blocks(4);
  ClassCounts sigma;
  sigma[InstrClass::kFp64] = 1000000;
  const auto s = model.evaluate(d, sigma, CacheStats{});
  EXPECT_NEAR(static_cast<double>(s.sigma[InstrClass::kFp64]), 1.18e6, 1e3);
}

TEST(CostModel, EffectiveTauMatchesWidth) {
  const GpuArch q = make_quadro4000();
  const KernelCostModel model(q);
  const LaunchDims d = dims_blocks(64);
  // FP32 on 8 active SMs: cpi 1 per warp instr / (32 threads * 8 SMs).
  EXPECT_NEAR(model.effective_tau(InstrClass::kFp32, d), 1.0 / 256.0, 1e-12);
  // A single-block launch only activates one SM.
  EXPECT_NEAR(model.effective_tau(InstrClass::kFp32, dims_blocks(1)), 1.0 / 32.0, 1e-12);
}

TEST(CostModel, RejectsEmptyLaunch) {
  const KernelCostModel model(make_quadro4000());
  LaunchDims d;
  d.grid_x = 0;
  EXPECT_THROW(model.evaluate(d, ClassCounts{}, CacheStats{}), ContractError);
}

TEST(CostModel, StallFractionReported) {
  const GpuArch q = make_quadro4000();
  const KernelCostModel model(q);
  const LaunchDims d = dims_blocks(8);
  const auto s = model.evaluate(d, fp32_sigma(d.total_threads(), 100), CacheStats{1000, 0, 1000});
  EXPECT_GT(s.stall_fraction(), 0.0);
  EXPECT_LT(s.stall_fraction(), 1.0);
}

}  // namespace
}  // namespace sigvp
