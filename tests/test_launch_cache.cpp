// Tests of the content-addressed launch cache (DESIGN.md §11): hit/replay
// correctness against recomputation at every interpreter worker count,
// key-collision safety on input bytes, deterministic insertion-order
// eviction, fault-plan / hook / atomics bypass, verify mode, and the
// scenario + sweep integration (cached fleets byte-identical to uncached).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "gpu/device.hpp"
#include "gpu/launch_cache.hpp"
#include "gpu/offline.hpp"
#include "interp/interpreter.hpp"
#include "mem/allocator.hpp"
#include "run/sweep.hpp"
#include "sim/event_queue.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

constexpr std::uint64_t kMemBytes = 8ull * 1024 * 1024;

/// One launch-shaped workload instance: kernel, dims, args, and a fresh
/// memory builder whose input bytes depend on `seed` (same seed -> same
/// bytes, different seed -> different bytes at the same addresses).
struct LaunchFixture {
  const workloads::Workload* w = nullptr;
  std::uint64_t n = 0;
  LaunchDims dims;
  KernelArgs args;
  std::vector<std::uint64_t> addrs;
  std::vector<workloads::BufferSpec> bufs;

  explicit LaunchFixture(const std::vector<workloads::Workload>& suite, const char* app) {
    w = &workloads::find(suite, app);
    n = w->test_n;
    bufs = w->buffers(n);
    FreeListAllocator alloc(4096, kMemBytes - 4096);
    for (const auto& b : bufs) addrs.push_back(*alloc.allocate(b.bytes));
    dims = w->dims(n);
    args = w->args(addrs, n);
  }

  AddressSpace make_memory(std::uint32_t seed) const {
    AddressSpace mem(kMemBytes, "m");
    for (std::size_t i = 0; i < bufs.size(); ++i) {
      if (!bufs[i].is_input) continue;
      std::uint32_t x = seed * 2654435761u + 1u;
      for (std::uint64_t off = 0; off + 4 <= bufs[i].bytes; off += 4) {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        mem.write<float>(addrs[i] + off, 0.25f + static_cast<float>(x % 997) / 997.0f);
      }
    }
    return mem;
  }
};

std::vector<std::uint8_t> all_bytes(const AddressSpace& mem) {
  std::vector<std::uint8_t> out(mem.size());
  mem.copy_out(out.data(), 0, out.size());
  return out;
}

void expect_profiles_bit_identical(const DynamicProfile& a, const DynamicProfile& b) {
  EXPECT_EQ(a.block_visits, b.block_visits);
  EXPECT_EQ(a.instr_counts, b.instr_counts);
  EXPECT_EQ(a.global_load_bytes, b.global_load_bytes);
  EXPECT_EQ(a.global_store_bytes, b.global_store_bytes);
  EXPECT_EQ(a.barriers_waited, b.barriers_waited);
  EXPECT_EQ(a.sfu_instrs, b.sfu_instrs);
  EXPECT_EQ(a.sqrt_instrs, b.sqrt_instrs);
}

void expect_stats_bit_identical(const KernelExecStats& a, const KernelExecStats& b) {
  EXPECT_EQ(a.sigma, b.sigma);
  EXPECT_EQ(a.num_blocks, b.num_blocks);
  EXPECT_EQ(a.serial_blocks, b.serial_blocks);
  EXPECT_EQ(a.issue_cycles, b.issue_cycles);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.duration_us, b.duration_us);
  EXPECT_EQ(a.dynamic_energy_j, b.dynamic_energy_j);
  EXPECT_EQ(a.cache.accesses, b.cache.accesses);
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  EXPECT_EQ(a.cache.misses, b.cache.misses);
}

class LaunchCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LaunchCache& c = LaunchCache::instance();
    c.clear();
    c.set_enabled(true);
    c.set_verify(false);
    c.set_capacity(1024, 512ull << 20);
  }
  void TearDown() override { SetUp(); }

  LaunchCache& cache() { return LaunchCache::instance(); }
};

TEST_F(LaunchCacheTest, HitReplaysByteIdenticalToRecomputationAtEveryWorkerCount) {
  const auto suite = workloads::make_suite();
  const GpuArch arch = make_quadro4000();
  const LaunchFixture fx(suite, "vectorAdd");

  // Fill once (miss), then compare every later hit against an independent
  // recomputation at each interpreter worker count: the replayed memory
  // must be byte-exact and the profile bit-identical regardless of how the
  // reference was parallelized.
  AddressSpace fill_mem = fx.make_memory(1);
  const LaunchCacheStats s0 = cache().stats();
  const LaunchEvaluation filled =
      cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, fill_mem);
  EXPECT_EQ(cache().stats().misses, s0.misses + 1);
  const std::vector<std::uint8_t> fill_bytes = all_bytes(fill_mem);

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));

    AddressSpace ref_mem = fx.make_memory(1);
    Interpreter::Options opt;
    opt.workers = workers;
    const DynamicProfile ref_profile =
        Interpreter().run(fx.w->kernel, fx.dims, fx.args, ref_mem, opt);

    AddressSpace hit_mem = fx.make_memory(1);
    const LaunchCacheStats before = cache().stats();
    const LaunchEvaluation hit =
        cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, hit_mem);
    EXPECT_EQ(cache().stats().hits, before.hits + 1);
    EXPECT_EQ(cache().stats().misses, before.misses);

    EXPECT_EQ(all_bytes(hit_mem), all_bytes(ref_mem));
    EXPECT_EQ(all_bytes(hit_mem), fill_bytes);
    expect_profiles_bit_identical(hit.profile, ref_profile);
    expect_profiles_bit_identical(hit.profile, filled.profile);
    expect_stats_bit_identical(hit.stats, filled.stats);
  }
  EXPECT_GT(cache().stats().bytes_replayed, 0u);
}

TEST_F(LaunchCacheTest, SameKeyDifferentInputBytesIsAMissAndBothEntriesCoexist) {
  const auto suite = workloads::make_suite();
  const GpuArch arch = make_quadro4000();
  const LaunchFixture fx(suite, "vectorAdd");

  // Same kernel fingerprint, same dims, same argument values — only the
  // bytes behind the input pointers differ. A colliding hit would replay
  // seed-1 outputs into the seed-2 run.
  AddressSpace m1 = fx.make_memory(1);
  AddressSpace m2 = fx.make_memory(2);
  const LaunchCacheStats s0 = cache().stats();
  cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, m1);
  const LaunchEvaluation e2 = cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, m2);
  EXPECT_EQ(cache().stats().misses, s0.misses + 2);
  EXPECT_EQ(cache().stats().hits, s0.hits);

  // The seed-2 result must equal an uncached evaluation on seed-2 inputs.
  AddressSpace ref = fx.make_memory(2);
  const LaunchEvaluation ref_eval =
      evaluate_functional(arch, fx.w->kernel, fx.dims, fx.args, ref);
  EXPECT_EQ(all_bytes(m2), all_bytes(ref));
  expect_profiles_bit_identical(e2.profile, ref_eval.profile);
  expect_stats_bit_identical(e2.stats, ref_eval.stats);

  // Both inputs are now resident in one bucket: each replays as a hit.
  AddressSpace h1 = fx.make_memory(1);
  AddressSpace h2 = fx.make_memory(2);
  cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, h1);
  cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, h2);
  EXPECT_EQ(cache().stats().hits, s0.hits + 2);
  EXPECT_EQ(all_bytes(h1), all_bytes(m1));
  EXPECT_EQ(all_bytes(h2), all_bytes(m2));
}

TEST_F(LaunchCacheTest, EvictionIsDeterministicInsertionOrder) {
  const auto suite = workloads::make_suite();
  const GpuArch arch = make_quadro4000();
  const LaunchFixture fx(suite, "vectorAdd");

  auto probe = [&](std::uint32_t seed) -> bool {
    AddressSpace m = fx.make_memory(seed);
    const LaunchCacheStats before = cache().stats();
    cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, m);
    return cache().stats().hits == before.hits + 1;
  };

  // Two identical rounds must produce identical hit/miss/eviction outcomes:
  // eviction follows insertion order alone, never hashing or wall clock.
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    cache().clear();
    cache().set_capacity(4, 512ull << 20);
    // The evictions counter is cumulative (clear() drops entries, not
    // history), so assert per-round deltas.
    const std::uint64_t ev0 = cache().stats().evictions;

    // Fill seeds 1..6 through a 4-entry cache: inserting 5 evicts 1,
    // inserting 6 evicts 2 — residency is {3, 4, 5, 6}.
    for (std::uint32_t seed = 1; seed <= 6; ++seed) {
      AddressSpace m = fx.make_memory(seed);
      cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, m);
    }
    EXPECT_EQ(cache().stats().entries, 4u);
    EXPECT_EQ(cache().stats().evictions, ev0 + 2);

    // Probe youngest-first so hits don't perturb residency (hits never
    // reorder or refill anything).
    EXPECT_TRUE(probe(6));
    EXPECT_TRUE(probe(5));
    EXPECT_TRUE(probe(4));
    EXPECT_TRUE(probe(3));
    EXPECT_EQ(cache().stats().evictions, ev0 + 2);

    // Seed 2 was evicted: the probe misses, re-fills, and the re-fill
    // evicts seed 3 — the oldest *insertion*, even though seed 3 was hit
    // (accessed) a moment ago. FIFO by insertion, not LRU by access.
    EXPECT_FALSE(probe(2));
    EXPECT_EQ(cache().stats().evictions, ev0 + 3);
    EXPECT_FALSE(probe(3));
    EXPECT_EQ(cache().stats().evictions, ev0 + 4);
    EXPECT_EQ(cache().stats().entries, 4u);
  }
}

TEST_F(LaunchCacheTest, ExplicitFaultBypassNeverFillsOrHits) {
  const auto suite = workloads::make_suite();
  const GpuArch arch = make_quadro4000();
  const LaunchFixture fx(suite, "vectorAdd");

  AddressSpace m1 = fx.make_memory(1);
  const LaunchCacheStats s0 = cache().stats();
  cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, m1, LaunchCache::Bypass::kFault);
  EXPECT_EQ(cache().stats().bypasses, s0.bypasses + 1);
  EXPECT_EQ(cache().stats().misses, s0.misses);
  EXPECT_EQ(cache().stats().entries, 0u);

  // Nothing was filled: an identical cacheable launch is a miss.
  AddressSpace m2 = fx.make_memory(1);
  cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, m2);
  EXPECT_EQ(cache().stats().misses, s0.misses + 1);
  EXPECT_EQ(all_bytes(m1), all_bytes(m2));
}

TEST_F(LaunchCacheTest, DeviceWithActiveFaultPlanBypassesTheCache) {
  const auto suite = workloads::make_suite();
  const LaunchFixture fx(suite, "vectorAdd");

  FaultConfig fcfg;
  fcfg.drop_rate = 1.0;  // any nonzero rate arms the plan; drops affect IPC only
  FaultPlan plan(fcfg);
  FaultStats fstats;
  ASSERT_TRUE(plan.enabled());

  EventQueue queue;
  GpuDevice dev(queue, make_quadro4000(), kMemBytes, "gpu");
  dev.set_fault(&plan, &fstats);
  const AddressSpace src = fx.make_memory(1);
  for (std::size_t i = 0; i < fx.bufs.size(); ++i) {
    if (!fx.bufs[i].is_input) continue;
    std::vector<std::uint8_t> bytes(fx.bufs[i].bytes);
    src.copy_out(bytes.data(), fx.addrs[i], bytes.size());
    dev.memory().copy_in(fx.addrs[i], bytes.data(), bytes.size());
  }

  LaunchRequest req;
  req.kernel = &fx.w->kernel;
  req.dims = fx.dims;
  req.args = fx.args;
  req.mode = ExecMode::kFunctional;
  const LaunchCacheStats s0 = cache().stats();
  dev.launch(0, req);
  EXPECT_EQ(cache().stats().bypasses, s0.bypasses + 1);
  EXPECT_EQ(cache().stats().hits, s0.hits);
  EXPECT_EQ(cache().stats().misses, s0.misses);
  EXPECT_EQ(cache().stats().entries, 0u);
}

TEST_F(LaunchCacheTest, CallerObserverForcesBypassAndSeesRealTraffic) {
  const auto suite = workloads::make_suite();
  const GpuArch arch = make_quadro4000();
  const LaunchFixture fx(suite, "vectorAdd");

  std::atomic<std::uint64_t> observed{0};
  LaunchCache::ObserverFactory observer = [&observed](std::size_t) -> MemAccessHook {
    return [&observed](std::uint64_t, std::uint32_t, bool) {
      observed.fetch_add(1, std::memory_order_relaxed);
    };
  };

  // Warm the cache with the identical launch, then launch with an observer:
  // it must NOT be served from the cache (the observer needs real traffic).
  AddressSpace warm = fx.make_memory(1);
  cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, warm);
  const LaunchCacheStats s0 = cache().stats();

  AddressSpace m = fx.make_memory(1);
  cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, m, LaunchCache::Bypass::kNone,
                   observer);
  EXPECT_EQ(cache().stats().bypasses, s0.bypasses + 1);
  EXPECT_EQ(cache().stats().hits, s0.hits);
  EXPECT_GT(observed.load(), 0u) << "observer must see the real execution's accesses";
  EXPECT_EQ(all_bytes(m), all_bytes(warm));
}

TEST_F(LaunchCacheTest, GlobalAtomicsKernelsAreBypassed) {
  const auto suite = workloads::make_suite();
  const GpuArch arch = make_quadro4000();
  const LaunchFixture fx(suite, "histogram");
  ASSERT_TRUE(Interpreter::uses_global_atomics(fx.w->kernel));

  AddressSpace m1 = fx.make_memory(1);
  AddressSpace m2 = fx.make_memory(1);
  const LaunchCacheStats s0 = cache().stats();
  cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, m1);
  cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, m2);
  EXPECT_EQ(cache().stats().bypasses, s0.bypasses + 2);
  EXPECT_EQ(cache().stats().hits, s0.hits);
  EXPECT_EQ(cache().stats().entries, 0u);
  EXPECT_EQ(all_bytes(m1), all_bytes(m2));
}

TEST_F(LaunchCacheTest, VerifyModeRecomputesOnHitsAndAgrees) {
  const auto suite = workloads::make_suite();
  const GpuArch arch = make_quadro4000();
  const LaunchFixture fx(suite, "matrixMul");
  cache().set_verify(true);

  AddressSpace fill = fx.make_memory(1);
  cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, fill);
  const LaunchCacheStats before = cache().stats();
  AddressSpace m = fx.make_memory(1);
  // A verify-mode hit re-executes against a copy of `m` and throws on any
  // stats/profile/write-set divergence; agreeing silently IS the assertion.
  EXPECT_NO_THROW(cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, m));
  EXPECT_EQ(cache().stats().hits, before.hits + 1);
  EXPECT_EQ(all_bytes(m), all_bytes(fill));
}

TEST_F(LaunchCacheTest, DisabledCacheTouchesNoCounters) {
  const auto suite = workloads::make_suite();
  const GpuArch arch = make_quadro4000();
  const LaunchFixture fx(suite, "vectorAdd");
  cache().set_enabled(false);

  AddressSpace m1 = fx.make_memory(1);
  AddressSpace m2 = fx.make_memory(1);
  const LaunchCacheStats s0 = cache().stats();
  cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, m1);
  cache().evaluate(arch, fx.w->kernel, fx.dims, fx.args, m2);
  const LaunchCacheStats s1 = cache().stats();
  EXPECT_EQ(s1.hits, s0.hits);
  EXPECT_EQ(s1.misses, s0.misses);
  EXPECT_EQ(s1.bypasses, s0.bypasses);
  EXPECT_EQ(s1.entries, 0u);
  EXPECT_EQ(all_bytes(m1), all_bytes(m2));
}

TEST_F(LaunchCacheTest, ScalarJitterPartitionsTheCacheByArgBytes) {
  // The almost-identical regime, cache-side: per-VP scalar jitter changes the
  // raw f32 argument bits, so jittered requests are distinct cache lines even
  // though the kernel fingerprint, dims, and input bytes are identical —
  // while a repeated jitter seed replays as a hit.
  const auto suite = workloads::make_app_suite();
  const workloads::Workload& cam = workloads::find(suite, "camPipeline");
  const workloads::PipelineStage& st = cam.stages.front();  // cam.gain
  const GpuArch arch = make_quadro4000();
  const std::uint64_t n = cam.test_n;

  std::vector<std::uint64_t> addrs;
  FreeListAllocator alloc(4096, kMemBytes - 4096);
  for (const auto& b : cam.buffers(n)) addrs.push_back(*alloc.allocate(b.bytes));
  auto make_memory = [&] {
    AddressSpace mem(kMemBytes, "m");
    for (std::uint64_t i = 0; i < n; ++i) {
      mem.write<float>(addrs[0] + 4 * i, static_cast<float>((i * 7 + 3) % 251));
    }
    return mem;
  };
  auto evaluate = [&](std::uint64_t jitter) {
    AddressSpace mem = make_memory();
    cache().evaluate(arch, st.kernel, st.dims(n), st.args(addrs, n, jitter), mem);
  };

  const LaunchCacheStats s0 = cache().stats();
  evaluate(0);     // canonical scalars: fill
  evaluate(0);     // repeat: hit
  evaluate(1001);  // jittered gain: new arg bytes, miss
  evaluate(1002);  // different VP's jitter: miss again
  evaluate(1001);  // same VP repeats its request: hit
  EXPECT_EQ(cache().stats().misses, s0.misses + 3);
  EXPECT_EQ(cache().stats().hits, s0.hits + 2);
  EXPECT_EQ(cache().stats().entries, 3u);

  // Structural addressing: a separately-built kernel image with the same
  // fingerprint hits the entries this suite's image filled.
  const auto rebuilt = workloads::make_app_suite();
  const workloads::PipelineStage& st2 =
      workloads::find(rebuilt, "camPipeline").stages.front();
  ASSERT_NE(&st2.kernel, &st.kernel);
  AddressSpace mem = make_memory();
  const LaunchCacheStats before = cache().stats();
  cache().evaluate(arch, st2.kernel, st2.dims(n), st2.args(addrs, n, 1002), mem);
  EXPECT_EQ(cache().stats().hits, before.hits + 1);
  EXPECT_EQ(cache().stats().misses, before.misses);
}

// --- scenario + sweep integration -------------------------------------------

workloads::AppTraits fleet_traits(const workloads::Workload& w) {
  workloads::AppTraits t = w.traits;
  t.iterations = 3;
  t.launches_per_iter = 1;
  t.iter_h2d_bytes = 0;
  t.iter_d2h_bytes = 0;
  return t;
}

run::SweepJob fleet_job(const workloads::Workload& w, std::size_t vps) {
  run::SweepJob job;
  job.name = w.app;
  job.group = w.app;
  job.config.backend = Backend::kSigmaVp;
  job.config.mode = ExecMode::kFunctional;
  job.config.functional_io = true;
  job.config.gpu_mem_bytes = 64ull * 1024 * 1024;
  const workloads::AppTraits t = fleet_traits(w);
  for (std::size_t i = 0; i < vps; ++i) job.apps.push_back(AppInstance{&w, w.test_n, t});
  return job;
}

TEST_F(LaunchCacheTest, CachedFleetScenarioIsByteIdenticalToUncachedAcrossSweepWorkers) {
  const auto suite = workloads::make_suite();
  std::vector<run::SweepJob> jobs;
  jobs.push_back(fleet_job(workloads::find(suite, "vectorAdd"), 4));
  jobs.push_back(fleet_job(workloads::find(suite, "BlackScholes"), 4));

  cache().set_enabled(false);
  const run::SweepResult uncached = run::SweepRunner(2).run(jobs);
  EXPECT_EQ(uncached.cache.hits, 0u);

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("sweep workers=" + std::to_string(workers));
    cache().clear();
    cache().set_enabled(true);
    const run::SweepResult cached = run::SweepRunner(workers).run(jobs);
    EXPECT_GT(cached.cache.hits, 0u);
    ASSERT_EQ(cached.jobs.size(), uncached.jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      EXPECT_EQ(cached.jobs[j].result.makespan_us, uncached.jobs[j].result.makespan_us);
      EXPECT_EQ(cached.jobs[j].result.app_outputs, uncached.jobs[j].result.app_outputs);
    }
  }
}

}  // namespace
}  // namespace sigvp
