// Tests of the sharded fleet executor (DESIGN.md §16): the FleetTopology
// parser, the conservative-horizon scheduler over per-domain event queues,
// the fabric completion protocol, the --shards execution knob's byte-identity
// contract, per-shard capture folding / checkpoint resume, and the fleet
// metrics/resident-bytes accounting.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "run/json_writer.hpp"
#include "run/sweep.hpp"
#include "run/thread_pool.hpp"
#include "sim/topology.hpp"
#include "snapshot/serial.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

// --- FleetTopology -----------------------------------------------------------

TEST(FleetTopology, FlatStarDefaults) {
  const FleetTopology t = FleetTopology::parse("", 4, 25.0);
  EXPECT_EQ(t.domains(), 4u);
  EXPECT_DOUBLE_EQ(t.to_root_us(0), 0.0);
  EXPECT_EQ(t.hops_to_root(0), 0u);
  for (std::uint32_t d = 1; d < 4; ++d) {
    EXPECT_DOUBLE_EQ(t.to_root_us(d), 25.0);
    EXPECT_EQ(t.hops_to_root(d), 1u);
  }
  EXPECT_DOUBLE_EQ(t.lookahead_us(), 25.0);
}

TEST(FleetTopology, NewickTreeAccumulatesEdgeLatencies) {
  // Domain 1 directly on the root switch; 2 and 3 behind an intermediate
  // switch whose uplink costs 10; 3 overrides its own leaf edge to 5.
  const FleetTopology t = FleetTopology::parse("(1,(2,3:5):10)", 4, 50.0);
  EXPECT_DOUBLE_EQ(t.to_root_us(1), 50.0);
  EXPECT_EQ(t.hops_to_root(1), 1u);
  EXPECT_DOUBLE_EQ(t.to_root_us(2), 60.0);  // 50 leaf + 10 uplink
  EXPECT_EQ(t.hops_to_root(2), 2u);
  EXPECT_DOUBLE_EQ(t.to_root_us(3), 15.0);  // 5 leaf + 10 uplink
  EXPECT_EQ(t.hops_to_root(3), 2u);
  EXPECT_DOUBLE_EQ(t.lookahead_us(), 15.0);  // min over domains 1..3
}

TEST(FleetTopology, SiblingGroupsKeepIndependentUplinks) {
  // Two sibling switches: the second group's uplink must not leak into the
  // first group's domains.
  const FleetTopology t = FleetTopology::parse("((1,2):10,(3,4):20)", 5, 50.0);
  EXPECT_DOUBLE_EQ(t.to_root_us(1), 60.0);
  EXPECT_DOUBLE_EQ(t.to_root_us(2), 60.0);
  EXPECT_DOUBLE_EQ(t.to_root_us(3), 70.0);
  EXPECT_DOUBLE_EQ(t.to_root_us(4), 70.0);
  EXPECT_EQ(t.hops_to_root(1), 2u);
  EXPECT_EQ(t.hops_to_root(4), 2u);
}

TEST(FleetTopology, RejectsMalformedSpecs) {
  EXPECT_THROW(FleetTopology::parse("(1,2", 3, 50.0), ContractError);     // unclosed
  EXPECT_THROW(FleetTopology::parse("(1,1)", 3, 50.0), ContractError);    // dup id
  EXPECT_THROW(FleetTopology::parse("(1)", 3, 50.0), ContractError);      // 2 missing
  EXPECT_THROW(FleetTopology::parse("(1,2,3)", 3, 50.0), ContractError);  // 3 oob
  EXPECT_THROW(FleetTopology::parse("(0,1,2)", 3, 50.0), ContractError);  // root listed
  EXPECT_THROW(FleetTopology::parse("(1,2):5", 3, 50.0), ContractError);  // trailing
  EXPECT_THROW(FleetTopology::parse("(1,2:-4)", 3, 50.0), ContractError); // negative
  EXPECT_THROW(FleetTopology::parse("(1,2:x)", 3, 50.0), ContractError);  // not a number
  EXPECT_THROW(FleetTopology::parse("", 1, 50.0), ContractError);         // < 2 domains
}

// --- sharded scenario execution ----------------------------------------------

ScenarioConfig fleet_config(std::uint32_t domains) {
  ScenarioConfig cfg;
  cfg.backend = Backend::kSigmaVp;
  cfg.mode = ExecMode::kAnalytic;
  cfg.gpu_mem_bytes = 16ull * 1024 * 1024;  // keep address spaces / captures small
  cfg.fleet.domains = domains;
  return cfg;
}

TEST(ShardedFleet, ValidatesConfiguration) {
  const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");
  const auto apps = replicate(w, w.test_n, 2);

  ScenarioConfig cfg = fleet_config(4);  // more domains than apps
  EXPECT_THROW(run_scenario(cfg, apps), ContractError);

  cfg = fleet_config(2);
  cfg.backend = Backend::kEmulationOnVp;  // sharding requires ΣVP
  EXPECT_THROW(run_scenario(cfg, apps), ContractError);

  cfg = fleet_config(2);
  cfg.fleet.topology = "(1,2)";  // id 2 out of range for D=2
  EXPECT_THROW(run_scenario(cfg, apps), ContractError);
}

TEST(ShardedFleet, DomainsMatchIndependentSliceRuns) {
  // The fabric only *observes* completions; it never feeds back into app
  // execution. So a D-domain fleet's per-app results must equal the
  // concatenation of D independent single-domain runs over the slices.
  const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");
  workloads::AppTraits quick = w.traits;
  quick.iterations = 2;

  std::vector<AppInstance> apps;
  for (int i = 0; i < 6; ++i) {
    apps.push_back(AppInstance{&w, w.test_n, quick});
    apps.back().jitter = static_cast<std::uint64_t>(i + 1);
  }

  const ScenarioResult fleet = run_scenario(fleet_config(2), apps);

  ScenarioConfig solo = fleet_config(1);
  const std::vector<AppInstance> lo(apps.begin(), apps.begin() + 3);
  const std::vector<AppInstance> hi(apps.begin() + 3, apps.end());
  const ScenarioResult r_lo = run_scenario(solo, lo);
  const ScenarioResult r_hi = run_scenario(solo, hi);

  ASSERT_EQ(fleet.app_done_us.size(), 6u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(fleet.app_done_us[static_cast<std::size_t>(i)],
              r_lo.app_done_us[static_cast<std::size_t>(i)])
        << i;
    EXPECT_EQ(fleet.app_done_us[static_cast<std::size_t>(i + 3)],
              r_hi.app_done_us[static_cast<std::size_t>(i)])
        << i;
  }
  EXPECT_EQ(fleet.makespan_us, std::max(r_lo.makespan_us, r_hi.makespan_us));
  EXPECT_EQ(fleet.jobs_dispatched, r_lo.jobs_dispatched + r_hi.jobs_dispatched);
  EXPECT_EQ(fleet.ipc_messages, r_lo.ipc_messages + r_hi.ipc_messages);
  EXPECT_EQ(fleet.gpu_compute_busy_us, r_lo.gpu_compute_busy_us + r_hi.gpu_compute_busy_us);
}

TEST(ShardedFleet, FabricAccountingAndFleetDone) {
  const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");
  workloads::AppTraits quick = w.traits;
  quick.iterations = 2;
  std::vector<AppInstance> apps;
  for (int i = 0; i < 8; ++i) apps.push_back(AppInstance{&w, w.test_n, quick});

  ScenarioConfig cfg = fleet_config(4);
  cfg.fleet.edge_latency_us = 40.0;
  const ScenarioResult r = run_scenario(cfg, apps);

  EXPECT_EQ(r.fleet.domains, 4u);
  EXPECT_DOUBLE_EQ(r.fleet.lookahead_us, 40.0);
  EXPECT_GT(r.fleet.sync_rounds, 0u);
  // 6 remote apps (domains 1..3 own 2 each): one report + one ack per app,
  // each crossing one flat-star edge.
  EXPECT_EQ(r.fleet.fabric_messages, 12u);
  EXPECT_EQ(r.fleet.fabric_hops, 12u);
  // The root hears about the last remote completion one flight time late.
  EXPECT_GE(r.fleet.fleet_done_us, r.makespan_us);
  EXPECT_LE(r.fleet.fleet_done_us, r.makespan_us + 40.0 + 1e-9);
  EXPECT_GT(r.fleet.resident_bytes, 0u);

  // Single-domain runs keep the fleet block inert.
  const ScenarioResult solo = run_scenario(fleet_config(1), apps);
  EXPECT_EQ(solo.fleet.domains, 0u);
  EXPECT_EQ(solo.fleet.fabric_messages, 0u);
}

TEST(ShardedFleet, TreeTopologyDelaysFleetDone) {
  const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");
  workloads::AppTraits quick = w.traits;
  quick.iterations = 1;
  std::vector<AppInstance> apps;
  for (int i = 0; i < 6; ++i) apps.push_back(AppInstance{&w, w.test_n, quick});

  ScenarioConfig flat = fleet_config(3);
  flat.fleet.edge_latency_us = 30.0;
  ScenarioConfig tree = flat;
  tree.fleet.topology = "(1,(2):170)";  // domain 2 sits 200 µs from the root

  const ScenarioResult r_flat = run_scenario(flat, apps);
  const ScenarioResult r_tree = run_scenario(tree, apps);
  // Same simulation inside every domain...
  EXPECT_EQ(r_flat.app_done_us, r_tree.app_done_us);
  // ...but the deeper fabric path defers the root's all-done instant and
  // doubles domain 2's per-message hop count.
  EXPECT_GT(r_tree.fleet.fleet_done_us, r_flat.fleet.fleet_done_us);
  EXPECT_GT(r_tree.fleet.fabric_hops, r_flat.fleet.fabric_hops);
  EXPECT_EQ(r_tree.fleet.fabric_messages, r_flat.fleet.fabric_messages);
}

// --- --shards execution knob: byte-identity battery --------------------------

std::vector<run::SweepJob> make_fleet_jobs() {
  static const auto suite = workloads::make_suite();
  const workloads::Workload& va = workloads::find(suite, "vectorAdd");
  const workloads::Workload& bs = workloads::find(suite, "BlackScholes");
  workloads::AppTraits quick_va = va.traits;
  quick_va.iterations = 2;
  workloads::AppTraits quick_bs = bs.traits;
  quick_bs.iterations = 2;

  std::vector<run::SweepJob> jobs;

  run::SweepJob solo;
  solo.name = "solo";
  solo.group = "legacy";
  solo.config = fleet_config(1);
  solo.apps = replicate(va, va.test_n, 3);
  jobs.push_back(solo);

  run::SweepJob fleet4;
  fleet4.name = "fleet4";
  fleet4.group = "fleet";
  fleet4.config = fleet_config(4);
  fleet4.config.dispatch.interleave = true;
  fleet4.config.async_launches = true;
  for (int i = 0; i < 8; ++i) {
    fleet4.apps.push_back(AppInstance{&va, va.test_n, quick_va});
    fleet4.apps.back().jitter = static_cast<std::uint64_t>(i);
  }
  jobs.push_back(fleet4);

  run::SweepJob tree;
  tree.name = "fleet-tree";
  tree.group = "fleet";
  tree.config = fleet_config(3);
  tree.config.fleet.topology = "(1,(2):25)";
  tree.apps = replicate(bs, bs.test_n, 6);
  for (auto& a : tree.apps) a.traits = quick_bs;
  jobs.push_back(tree);

  // Fault injection across shard boundaries: lossy transport everywhere,
  // a device reset mid-run, and a stalling VP that lands in domain 1.
  run::SweepJob faulty;
  faulty.name = "fleet-faulty";
  faulty.group = "fleet";
  faulty.config = fleet_config(2);
  faulty.config.fault.seed = 42;
  faulty.config.fault.drop_rate = 0.05;
  faulty.config.fault.dup_rate = 0.02;
  faulty.config.fault.device_reset_at_us = {30000.0};
  faulty.config.fault.stall_vp = 4;
  faulty.apps = replicate(va, va.test_n, 6);
  for (auto& a : faulty.apps) a.traits = quick_va;
  jobs.push_back(faulty);

  // Functional fleet: real data through per-domain launch-cache shards.
  run::SweepJob func;
  func.name = "fleet-func";
  func.group = "fleet";
  func.config = fleet_config(2);
  func.config.mode = ExecMode::kFunctional;
  func.config.functional_io = true;
  func.apps = replicate(va, va.test_n, 4);
  for (auto& a : func.apps) {
    a.traits = va.traits;
    a.traits->iterations = 1;
  }
  jobs.push_back(func);
  return jobs;
}

TEST(ShardedFleet, BenchJsonByteIdenticalAcrossShardsAndWorkers) {
  const auto jobs = make_fleet_jobs();

  run::set_fleet_shards(1);
  const run::SweepResult base = run::SweepRunner(1).run(jobs);
  std::string base_json = run::sweep_to_json(base, "fleet-battery");
  // wall_ms is host wall-clock — the one legitimately varying field.
  ASSERT_NE(base_json.find("\"wall_ms\""), std::string::npos);

  // wall_ms and workers are host-execution descriptors, the only fields the
  // JSON is *supposed* to vary by; every simulation byte must be identical.
  auto canonical = [](run::SweepResult r) {
    r.wall_ms = 0.0;
    r.workers = 1;
    return run::sweep_to_json(r, "fleet-battery");
  };
  base_json = canonical(base);

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    for (const std::size_t workers : {1u, 4u}) {
      run::set_fleet_shards(shards);
      const run::SweepResult got = run::SweepRunner(workers).run(jobs);
      EXPECT_EQ(canonical(got), base_json)
          << "BENCH JSON diverged at shards=" << shards << " workers=" << workers;
      // The executor stats kept out of sweep JSON (see json_writer.cpp) are
      // still shard/worker invariant — the round structure is pure sim.
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        EXPECT_EQ(got.jobs[j].result.fleet.sync_rounds, base.jobs[j].result.fleet.sync_rounds)
            << jobs[j].name << " at shards=" << shards << " workers=" << workers;
        EXPECT_EQ(got.jobs[j].result.fleet.resident_bytes,
                  base.jobs[j].result.fleet.resident_bytes)
            << jobs[j].name << " at shards=" << shards << " workers=" << workers;
      }
    }
  }
  run::set_fleet_shards(1);

  // The faulty job really exercised the fault machinery, sharded.
  const ScenarioResult& faulty = base.find("fleet-faulty").result;
  EXPECT_TRUE(faulty.fault.active);
  EXPECT_GT(faulty.fault.retransmits + faulty.fault.duplicates_suppressed, 0u);
  EXPECT_GE(faulty.fault.vp_stalls, 1u);
  EXPECT_EQ(faulty.fault.unrecovered_jobs, 0u);
  // The functional job produced outputs and hit its private cache shards.
  const ScenarioResult& func = base.find("fleet-func").result;
  ASSERT_EQ(func.app_outputs.size(), 4u);
  EXPECT_FALSE(func.app_outputs[0].empty());
  EXPECT_GT(func.fleet.cache_hits + func.fleet.cache_misses, 0u);
}

// --- captures, checkpoint, resume --------------------------------------------

TEST(ShardedFleet, CapturesReplayAndDetectTampering) {
  const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");
  workloads::AppTraits quick = w.traits;
  quick.iterations = 2;
  std::vector<AppInstance> apps;
  for (int i = 0; i < 6; ++i) apps.push_back(AppInstance{&w, w.test_n, quick});

  const ScenarioConfig cfg = fleet_config(3);
  CaptureOptions cap;
  cap.every_us = 5000.0;

  std::vector<FleetCapture> captures;
  const ScenarioResult first = run_scenario(cfg, apps, cap, &captures);
  ASSERT_GT(captures.size(), 1u);
  for (std::size_t i = 1; i < captures.size(); ++i) {
    EXPECT_GT(captures[i].at_us, captures[i - 1].at_us);
  }

  // Replay under verification: same digests, same result.
  CaptureOptions verify = cap;
  verify.expect = captures;
  std::vector<FleetCapture> replayed;
  const ScenarioResult second = run_scenario(cfg, apps, verify, &replayed);
  EXPECT_EQ(replayed.size(), captures.size());
  EXPECT_EQ(first.makespan_us, second.makespan_us);
  EXPECT_EQ(first.fleet.sync_rounds, second.fleet.sync_rounds);

  // A tampered digest is caught at its capture position.
  CaptureOptions tampered = cap;
  tampered.expect = captures;
  tampered.expect[1].digest ^= 0x1;
  EXPECT_THROW(run_scenario(cfg, apps, tampered, nullptr), snapshot::SnapshotError);
}

TEST(ShardedFleet, CheckpointRoundTripsFleetStats) {
  // SweepRunner checkpoints serialize ScenarioResult — including the new
  // FleetStats block — and a warm rerun must splice bit-identical results.
  const auto jobs = make_fleet_jobs();
  const std::string dir = "test_fleet_ckpt";
  std::filesystem::remove_all(dir);

  run::SweepSnapshotOptions snap;
  snap.dir = dir;
  snap.every_us = 5000.0;

  run::SweepResumeInfo cold_info;
  const run::SweepResult cold = run::SweepRunner(2).run(jobs, snap, &cold_info);
  EXPECT_TRUE(cold_info.resumed_from.empty());

  run::SweepResumeInfo warm_info;
  const run::SweepResult warm = run::SweepRunner(2).run(jobs, snap, &warm_info);
  EXPECT_FALSE(warm_info.resumed_from.empty());
  EXPECT_EQ(warm_info.jobs_resumed, jobs.size());

  ASSERT_EQ(cold.jobs.size(), warm.jobs.size());
  for (std::size_t i = 0; i < cold.jobs.size(); ++i) {
    EXPECT_EQ(cold.jobs[i].result.fleet, warm.jobs[i].result.fleet) << cold.jobs[i].name;
    EXPECT_EQ(cold.jobs[i].result.makespan_us, warm.jobs[i].result.makespan_us);
    EXPECT_EQ(cold.jobs[i].result.app_done_us, warm.jobs[i].result.app_done_us);
  }
  std::filesystem::remove_all(dir);
}

// --- metrics / resident-bytes ------------------------------------------------

TEST(ShardedFleet, MetricsCarryFleetGaugesWhenCollecting) {
  trace::set_metrics_forced(true);
  const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");
  workloads::AppTraits quick = w.traits;
  quick.iterations = 2;
  std::vector<AppInstance> apps;
  for (int i = 0; i < 6; ++i) apps.push_back(AppInstance{&w, w.test_n, quick});

  const ScenarioResult r = run_scenario(fleet_config(3), apps);
  trace::set_metrics_forced(false);

  ASSERT_NE(r.metrics, nullptr);
  const auto& gauges = r.metrics->gauges();
  const auto res = gauges.find("fleet.resident_bytes");
  ASSERT_NE(res, gauges.end());
  EXPECT_DOUBLE_EQ(res->second.value, static_cast<double>(r.fleet.resident_bytes));
  EXPECT_GT(r.fleet.resident_bytes, 0u);

  const auto& counters = r.metrics->counters();
  const auto msgs = counters.find("fleet.fabric_messages");
  ASSERT_NE(msgs, counters.end());
  EXPECT_EQ(msgs->second.value, r.fleet.fabric_messages);
  const auto rounds = counters.find("fleet.sync_rounds");
  ASSERT_NE(rounds, counters.end());
  EXPECT_EQ(rounds->second.value, r.fleet.sync_rounds);
  EXPECT_NE(gauges.find("run.makespan_us"), gauges.end());
}

// --- CLI ---------------------------------------------------------------------

TEST(SweepCliShards, ParsesAndInstallsShardKnob) {
  const char* argv_full[] = {"bench", "--shards", "4"};
  run::SweepCli cli =
      run::parse_sweep_cli(3, const_cast<char**>(argv_full), "BENCH_default.json");
  EXPECT_EQ(cli.shards, 4u);
  EXPECT_EQ(run::fleet_shards(), 4u);

  const char* argv_defaults[] = {"bench"};
  cli = run::parse_sweep_cli(1, const_cast<char**>(argv_defaults), "BENCH_default.json");
  EXPECT_EQ(cli.shards, 1u);
  EXPECT_EQ(run::fleet_shards(), 1u);
}

}  // namespace
}  // namespace sigvp
