// Tests for the pipe-parallel issue model, the dual copy engines, batched
// DMA, the coalescing window, and analytic-mode coalescing — the mechanisms
// behind the Fig. 9/10 reproductions.

#include <gtest/gtest.h>

#include "cuda/registry.hpp"
#include "cuda/runtime.hpp"
#include "ir/builder.hpp"
#include "sched/dispatcher.hpp"
#include "util/check.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

constexpr std::uint64_t kMem = 256ull * 1024 * 1024;

LaunchDims dims_blocks(std::uint32_t blocks, std::uint32_t tpb = 256) {
  LaunchDims d;
  d.block_x = tpb;
  d.grid_x = blocks;
  return d;
}

TEST(IssuePipes, ParallelPipesTakeTheMaxNotTheSum) {
  const GpuArch q = make_quadro4000();
  const LaunchDims d = dims_blocks(8);
  ClassCounts fp_only, int_only, both;
  fp_only[InstrClass::kFp32] = d.total_threads() * 100;
  int_only[InstrClass::kInt] = d.total_threads() * 100;
  both[InstrClass::kFp32] = d.total_threads() * 100;
  both[InstrClass::kInt] = d.total_threads() * 100;

  const double c_fp = KernelCostModel::ideal_issue_cycles(q, d, fp_only);
  const double c_int = KernelCostModel::ideal_issue_cycles(q, d, int_only);
  const double c_both = KernelCostModel::ideal_issue_cycles(q, d, both);
  // FP and INT issue on different pipes: running both costs max, not sum.
  EXPECT_DOUBLE_EQ(c_both, std::max(c_fp, c_int));
}

TEST(IssuePipes, MemoryPipeBindsLoadHeavyKernels) {
  const GpuArch q = make_quadro4000();  // LD/ST cpi 2, FP32 cpi 1
  const LaunchDims d = dims_blocks(8);
  ClassCounts mix;
  mix[InstrClass::kLoad] = d.total_threads() * 100;  // 200 cyc/warp-thread
  mix[InstrClass::kFp32] = d.total_threads() * 100;  // 100
  const double c = KernelCostModel::ideal_issue_cycles(q, d, mix);
  ClassCounts loads_only;
  loads_only[InstrClass::kLoad] = d.total_threads() * 100;
  EXPECT_DOUBLE_EQ(c, KernelCostModel::ideal_issue_cycles(q, d, loads_only));
}

TEST(DualCopyEngines, UploadAndDownloadOverlap) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  const auto s1 = dev.create_stream();
  const auto s2 = dev.create_stream();
  const std::uint64_t buf = dev.malloc(8 << 20);
  // An H2D on one stream and a D2H on another should fully overlap.
  const SimTime up = dev.memcpy_h2d(s1, buf, nullptr, 8 << 20);
  const SimTime down = dev.memcpy_d2h(s2, nullptr, buf, 8 << 20);
  EXPECT_NEAR(up, down, 1e-9);
  EXPECT_GT(dev.h2d_engine_free_at(), 0.0);
  EXPECT_GT(dev.d2h_engine_free_at(), 0.0);
}

TEST(DualCopyEngines, SameDirectionStillSerializes) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  const auto s1 = dev.create_stream();
  const auto s2 = dev.create_stream();
  const std::uint64_t buf = dev.malloc(8 << 20);
  const SimTime c1 = dev.memcpy_h2d(s1, buf, nullptr, 8 << 20);
  const SimTime c2 = dev.memcpy_h2d(s2, buf, nullptr, 8 << 20);
  EXPECT_NEAR(c2, 2.0 * c1, 1.0);
}

TEST(BatchedD2D, OneSetupCostForManyChunks) {
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  const std::uint64_t src = dev.malloc(1 << 16);
  const std::uint64_t dst = dev.malloc(1 << 16);
  for (std::uint64_t i = 0; i < (1 << 16); i += 8) {
    dev.memory().write<std::int64_t>(src + i, static_cast<std::int64_t>(i));
  }
  std::vector<GpuDevice::CopyDesc> descs;
  for (int c = 0; c < 16; ++c) {
    const std::uint64_t off = static_cast<std::uint64_t>(c) * 4096;
    descs.push_back({dst + off, src + off, 4096});
  }
  const SimTime batched = dev.memcpy_d2d_batch(0, descs);

  EventQueue q2;
  GpuDevice dev2(q2, make_quadro4000(), kMem, "gpu2");
  const std::uint64_t a2 = dev2.malloc(1 << 16), b2 = dev2.malloc(1 << 16);
  SimTime separate = 0.0;
  for (int c = 0; c < 16; ++c) {
    const std::uint64_t off = static_cast<std::uint64_t>(c) * 4096;
    separate = dev2.memcpy_d2d(0, b2 + off, a2 + off, 4096);
  }
  // Batched: one 0.8 µs setup; separate: sixteen.
  EXPECT_LT(batched, separate * 0.5);
  // Functional equivalence: every byte moved.
  for (std::uint64_t i = 0; i < (1 << 16); i += 4096) {
    EXPECT_EQ(dev.memory().read<std::int64_t>(dst + i), static_cast<std::int64_t>(i));
  }
}

TEST(CoalesceWindow, HeldJobDispatchesAfterWindowExpiry) {
  using namespace workloads;
  const Workload w = make_vector_add();
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  DispatchConfig cfg;
  cfg.interleave = true;
  cfg.coalesce = true;
  cfg.coalesce_window_us = 40.0;
  cfg.dispatch_overhead_us = 0.0;
  Dispatcher disp(q, dev, cfg);
  disp.register_vp();

  const std::uint64_t n = 256;
  std::vector<std::uint64_t> addrs;
  for (const auto& s : w.buffers(n)) addrs.push_back(dev.malloc(s.bytes));
  Job j;
  j.vp_id = 0;
  j.seq_in_vp = 0;
  j.kind = JobKind::kKernel;
  j.launch.request.kernel = &w.kernel;
  j.launch.request.dims = w.dims(n);
  j.launch.request.args = w.args(addrs, n);
  j.launch.request.mode = ExecMode::kAnalytic;
  j.launch.request.analytic_profile = w.profile(n);
  j.launch.request.mem_behavior = w.behavior(n);
  j.launch.coalesce = w.coalesce(n);
  SimTime done = -1.0;
  j.on_complete = [&done](SimTime end, const KernelExecStats*) { done = end; };
  disp.submit(std::move(j));
  q.run();
  // No peer ever arrived: the window timer must release the job, and its
  // start is delayed by (at least) the window.
  EXPECT_GE(done, 40.0);
  EXPECT_EQ(disp.coalesced_groups(), 0u);
  EXPECT_TRUE(disp.idle());
}

TEST(CoalesceAnalytic, MergedLaunchSumsProfiles) {
  using namespace workloads;
  const Workload w = make_vector_add();
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  DispatchConfig cfg;
  cfg.interleave = false;
  cfg.coalesce = true;
  cfg.coalesce_window_us = 10.0;
  cfg.coalesce_eager_peers = 1;
  cfg.dispatch_overhead_us = 0.0;
  Dispatcher disp(q, dev, cfg);

  const std::uint64_t n = 1000;
  std::vector<KernelExecStats> stats;
  for (std::uint32_t vp = 0; vp < 2; ++vp) {
    disp.register_vp();
  }
  for (std::uint32_t vp = 0; vp < 2; ++vp) {
    std::vector<std::uint64_t> addrs;
    for (const auto& s : w.buffers(n)) addrs.push_back(dev.malloc(s.bytes));
    Job j;
    j.vp_id = vp;
    j.seq_in_vp = 0;
    j.kind = JobKind::kKernel;
    j.launch.request.kernel = &w.kernel;
    j.launch.request.dims = w.dims(n);
    j.launch.request.args = w.args(addrs, n);
    j.launch.request.mode = ExecMode::kAnalytic;
    j.launch.request.analytic_profile = w.profile(n);
    j.launch.request.mem_behavior = w.behavior(n);
    j.launch.coalesce = w.coalesce(n);
    j.on_complete = [&stats](SimTime, const KernelExecStats* s) { stats.push_back(*s); };
    disp.submit(std::move(j));
  }
  q.run();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(disp.coalesced_groups(), 1u);
  // Both members observe the merged launch's σ: twice one program's count
  // (the merged kernel really processed 2n elements).
  const ClassCounts single = w.profile(n).instr_counts;
  EXPECT_NEAR(static_cast<double>(stats[0].sigma.total()),
              2.0 * static_cast<double>(single.total()),
              0.02 * static_cast<double>(single.total()));
  EXPECT_EQ(stats[0].sigma, stats[1].sigma);
  EXPECT_EQ(dev.kernels_launched(), 1u);
}

TEST(KernelRegistry, StableAddressesAndLookup) {
  cuda::KernelRegistry reg;
  KernelBuilder b("k1", 0);
  b.block("entry");
  b.ret();
  const KernelIR& k1 = reg.add(b.build());
  KernelBuilder b2("k2", 0);
  b2.block("entry");
  b2.ret();
  reg.add(b2.build());

  EXPECT_EQ(&reg.get("k1"), &k1);  // pointer stability across later adds
  EXPECT_TRUE(reg.contains("k2"));
  EXPECT_FALSE(reg.contains("k3"));
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.names().size(), 2u);
  EXPECT_THROW(reg.get("k3"), ContractError);

  KernelBuilder b3("k1", 0);
  b3.block("entry");
  b3.ret();
  EXPECT_THROW(reg.add(b3.build()), ContractError);  // duplicate name
}

TEST(DispatchOverhead, SerializedOnServiceThreadPerJob) {
  // Two analytic kernels from different VPs, serial mode: each pays the
  // host-side service time before the device sees it.
  using namespace workloads;
  const Workload w = make_vector_add();
  EventQueue q;
  GpuDevice dev(q, make_quadro4000(), kMem, "gpu");
  DispatchConfig cfg;
  cfg.dispatch_overhead_us = 500.0;
  Dispatcher disp(q, dev, cfg);
  disp.register_vp();
  disp.register_vp();

  const std::uint64_t n = 256;
  SimTime last = 0.0;
  for (std::uint32_t vp = 0; vp < 2; ++vp) {
    std::vector<std::uint64_t> addrs;
    for (const auto& s : w.buffers(n)) addrs.push_back(dev.malloc(s.bytes));
    Job j;
    j.vp_id = vp;
    j.seq_in_vp = 0;
    j.kind = JobKind::kKernel;
    j.launch.request.kernel = &w.kernel;
    j.launch.request.dims = w.dims(n);
    j.launch.request.args = w.args(addrs, n);
    j.launch.request.mode = ExecMode::kAnalytic;
    j.launch.request.analytic_profile = w.profile(n);
    j.launch.request.mem_behavior = w.behavior(n);
    j.on_complete = [&last](SimTime end, const KernelExecStats*) { last = end; };
    disp.submit(std::move(j));
  }
  q.run();
  // Two jobs, each ≥ 500 µs of service: the makespan reflects both.
  EXPECT_GE(last, 1000.0);
}

}  // namespace
}  // namespace sigvp
