// Tests of the parallel scenario sweep engine (src/run): the thread pool,
// parallel_for, the SweepRunner determinism contract (identical results for
// any worker count), result aggregation, CLI parsing and the JSON writer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/scenario.hpp"
#include "run/json_writer.hpp"
#include "run/sweep.hpp"
#include "run/thread_pool.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  run::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  // The pool stays usable after wait_idle.
  pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPool, DefaultWorkersIsAtLeastOne) {
  EXPECT_GE(run::ThreadPool::default_workers(), 1u);
  run::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), run::ThreadPool::default_workers());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  run::ThreadPool pool(3);
  std::vector<int> hits(128, 0);  // disjoint slots: no synchronization needed
  run::parallel_for(pool, hits.size(), [&hits](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ParallelFor, RethrowsLowestIndexExceptionAfterDraining) {
  run::ThreadPool pool(4);
  std::vector<int> hits(32, 0);
  try {
    run::parallel_for(pool, hits.size(), [&hits](std::size_t i) {
      if (i == 5 || i == 20) throw std::runtime_error("boom " + std::to_string(i));
      hits[i] = 1;
    });
    FAIL() << "parallel_for swallowed the exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 5");  // lowest failing index wins
  }
  // Every non-throwing task still ran: a failure does not cancel the sweep.
  for (std::size_t i = 0; i < hits.size(); ++i) {
    if (i == 5 || i == 20) continue;
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ParallelFor, ChunksByGrainNotPerIndex) {
  // The grain regression: 100k fleet domains must not become 100k queue
  // round-trips. Chunks are max(1, count / (workers * 4)) indices each.
  run::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1024);
  std::uint64_t before = pool.tasks_submitted();
  run::parallel_for(pool, hits.size(), [&hits](std::size_t i) { hits[i] += 1; });
  // 1024 / (4 * 4) = 64-index chunks -> exactly 16 pool tasks.
  EXPECT_EQ(pool.tasks_submitted() - before, 16u);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);

  // Small counts degrade gracefully to one task per index.
  before = pool.tasks_submitted();
  std::atomic<int> small{0};
  run::parallel_for(pool, 10, [&small](std::size_t) { small += 1; });
  EXPECT_EQ(pool.tasks_submitted() - before, 10u);
  EXPECT_EQ(small.load(), 10);
}

TEST(ParallelFor, NestedCallsOnSharedPoolDoNotDeadlock) {
  // The fleet executor's shape: sweep workers running parallel_for on the
  // same pool their own task executes on. The waiting caller must help
  // drain the queue or a 2-thread pool wedges instantly.
  run::ThreadPool pool(2);
  std::atomic<int> count{0};
  run::parallel_for(pool, 4, [&pool, &count](std::size_t) {
    run::parallel_for(pool, 8, [&count](std::size_t) { count += 1; });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(SweepRunner, RejectsUnnamedAndDuplicateJobs) {
  const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");
  run::SweepJob job;
  job.name = "a";
  job.apps = replicate(w, w.test_n, 1);

  run::SweepRunner runner(2);
  run::SweepJob unnamed = job;
  unnamed.name.clear();
  EXPECT_THROW(runner.run({unnamed}), ContractError);
  EXPECT_THROW(runner.run({job, job}), ContractError);
}

// Builds a small mixed sweep: serial + optimized ΣVP, an emulation baseline,
// and one functional job carrying real data end to end.
std::vector<run::SweepJob> make_mixed_jobs(const std::vector<workloads::Workload>& suite) {
  const workloads::Workload& va = workloads::find(suite, "vectorAdd");
  const workloads::Workload& bs = workloads::find(suite, "BlackScholes");
  workloads::AppTraits quick_va = va.traits;
  quick_va.iterations = 2;
  workloads::AppTraits quick_bs = bs.traits;
  quick_bs.iterations = 2;

  auto base = [](const char* name, const workloads::Workload& w,
                 const workloads::AppTraits& t, std::size_t vps) {
    run::SweepJob job;
    job.name = name;
    job.group = w.app;
    job.config.mode = ExecMode::kAnalytic;
    for (std::size_t i = 0; i < vps; ++i) job.apps.push_back(AppInstance{&w, w.test_n, t});
    return job;
  };

  std::vector<run::SweepJob> jobs;
  jobs.push_back(base("va-serial", va, quick_va, 3));
  jobs.push_back(base("va-opt", va, quick_va, 3));
  jobs.back().config.dispatch.interleave = true;
  jobs.back().config.dispatch.coalesce = true;
  jobs.back().config.dispatch.coalesce_eager_peers = 2;
  jobs.back().config.async_launches = true;
  jobs.push_back(base("bs-emul", bs, quick_bs, 2));
  jobs.back().config.backend = Backend::kEmulationOnVp;
  jobs.push_back(base("bs-opt", bs, quick_bs, 2));
  jobs.back().config.dispatch.interleave = true;
  jobs.back().config.async_launches = true;

  // Functional job with real data: output bytes must also be reproducible.
  run::SweepJob func = base("va-func", va, quick_va, 2);
  func.config.mode = ExecMode::kFunctional;
  func.config.functional_io = true;
  func.apps[0].traits->iterations = 1;
  func.apps[1].traits->iterations = 1;
  jobs.push_back(func);
  return jobs;
}

void expect_identical(const ScenarioResult& a, const ScenarioResult& b,
                      const std::string& name) {
  EXPECT_EQ(a.makespan_us, b.makespan_us) << name;
  EXPECT_EQ(a.app_done_us, b.app_done_us) << name;
  EXPECT_EQ(a.jobs_dispatched, b.jobs_dispatched) << name;
  EXPECT_EQ(a.reorders, b.reorders) << name;
  EXPECT_EQ(a.coalesced_groups, b.coalesced_groups) << name;
  EXPECT_EQ(a.coalesced_jobs, b.coalesced_jobs) << name;
  EXPECT_EQ(a.ipc_messages, b.ipc_messages) << name;
  EXPECT_EQ(a.gpu_dynamic_energy_j, b.gpu_dynamic_energy_j) << name;
  EXPECT_EQ(a.gpu_compute_busy_us, b.gpu_compute_busy_us) << name;
  EXPECT_EQ(a.gpu_copy_busy_us, b.gpu_copy_busy_us) << name;
  EXPECT_EQ(a.app_outputs, b.app_outputs) << name;
}

TEST(SweepRunner, BitIdenticalResultsAcrossWorkerCounts) {
  const auto suite = workloads::make_suite();
  const auto jobs = make_mixed_jobs(suite);

  const run::SweepResult one = run::SweepRunner(1).run(jobs);
  const run::SweepResult four = run::SweepRunner(4).run(jobs);
  const run::SweepResult four_again = run::SweepRunner(4).run(jobs);

  EXPECT_EQ(one.workers, 1u);
  EXPECT_EQ(four.workers, 4u);
  ASSERT_EQ(one.jobs.size(), jobs.size());
  ASSERT_EQ(four.jobs.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // Results stay in input order regardless of which worker ran them.
    EXPECT_EQ(one.jobs[i].name, jobs[i].name);
    EXPECT_EQ(four.jobs[i].name, jobs[i].name);
    EXPECT_EQ(four.jobs[i].group, jobs[i].group);
    expect_identical(one.jobs[i].result, four.jobs[i].result, jobs[i].name);
    expect_identical(four.jobs[i].result, four_again.jobs[i].result, jobs[i].name);
  }

  // The functional job actually moved data.
  const ScenarioResult& func = four.find("va-func").result;
  ASSERT_EQ(func.app_outputs.size(), 2u);
  EXPECT_FALSE(func.app_outputs[0].empty());
}

TEST(SweepResult, FindSpeedupAndSummaries) {
  run::SweepResult sweep;
  sweep.jobs.push_back({"slow", "g1", {}});
  sweep.jobs.back().result.makespan_us = 400.0;
  sweep.jobs.push_back({"fast", "g1", {}});
  sweep.jobs.back().result.makespan_us = 100.0;
  sweep.jobs.push_back({"other", "g2", {}});
  sweep.jobs.back().result.makespan_us = 200.0;

  EXPECT_EQ(sweep.find("fast").result.makespan_us, 100.0);
  EXPECT_THROW(sweep.find("missing"), ContractError);
  EXPECT_DOUBLE_EQ(sweep.speedup("fast", "slow"), 4.0);
  EXPECT_DOUBLE_EQ(sweep.speedup("slow", "fast"), 0.25);

  const SampleSummary all = sweep.summarize();
  EXPECT_EQ(all.count, 3u);
  EXPECT_DOUBLE_EQ(all.min, 100.0);
  EXPECT_DOUBLE_EQ(all.max, 400.0);
  EXPECT_NEAR(all.mean, 700.0 / 3.0, 1e-9);
  EXPECT_LE(all.p50, all.p95);

  const SampleSummary g1 = sweep.summarize_group("g1");
  EXPECT_EQ(g1.count, 2u);
  EXPECT_DOUBLE_EQ(g1.max, 400.0);
  EXPECT_THROW(sweep.summarize_group("nope"), ContractError);
}

TEST(SweepCli, ParsesWorkersAndJsonOverrides) {
  const char* argv_defaults[] = {"bench"};
  run::SweepCli cli = run::parse_sweep_cli(1, const_cast<char**>(argv_defaults),
                                           "BENCH_default.json");
  EXPECT_EQ(cli.workers, 0u);
  EXPECT_EQ(cli.json_path, "BENCH_default.json");

  const char* argv_full[] = {"bench", "--workers", "7", "--json", "out.json"};
  cli = run::parse_sweep_cli(5, const_cast<char**>(argv_full), "BENCH_default.json");
  EXPECT_EQ(cli.workers, 7u);
  EXPECT_EQ(cli.json_path, "out.json");
}

TEST(JsonWriter, EmitsDocumentedSchema) {
  run::SweepResult sweep;
  sweep.workers = 3;
  sweep.wall_ms = 12.5;
  sweep.jobs.push_back({"job \"a\"", "grp", {}});
  ScenarioResult& r = sweep.jobs.back().result;
  r.makespan_us = 1234.5;
  r.app_done_us = {1000.0, 1234.5};
  r.jobs_dispatched = 7;
  r.reorders = 2;
  r.coalesced_groups = 1;
  r.coalesced_jobs = 3;
  r.ipc_messages = 14;

  const std::string json = run::sweep_to_json(sweep, "unit");
  EXPECT_NE(json.find("\"bench\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"workers\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"job \\\"a\\\"\""), std::string::npos);  // escaped name
  EXPECT_NE(json.find("\"makespan_us\": 1234.5"), std::string::npos);
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
  EXPECT_NE(json.find("\"reorders\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"app_done_us\": [1000, 1234.5]"), std::string::npos);

  const std::string path = "test_sweep_out.json";
  run::write_sweep_json(sweep, "unit", path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream read_back;
  read_back << in.rdbuf();
  EXPECT_EQ(read_back.str(), json);
  in.close();
  std::remove(path.c_str());
}

TEST(Stats, PercentileAndSummary) {
  EXPECT_DOUBLE_EQ(percentile({5.0}, 95.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 50.0), 2.5);  // sorts first

  const SampleSummary s = summarize({10.0, 20.0, 30.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 10.0);
  EXPECT_DOUBLE_EQ(s.p50, 20.0);
  EXPECT_DOUBLE_EQ(s.max, 30.0);
  EXPECT_DOUBLE_EQ(s.mean, 20.0);
}

}  // namespace
}  // namespace sigvp
