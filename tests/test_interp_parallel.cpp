// Differential battery for the block-parallel interpreter: for every
// workload in the suite, the memory image must be byte-exact and the
// DynamicProfile bit-identical for every worker count (the determinism
// contract in DESIGN.md §10). Also covers the atomic serial fallback, the
// strict-barrier diagnostic, shard hooks, nested-parallelism budgeting, and
// decode-cache invalidation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "interp/decoded.hpp"
#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "mem/allocator.hpp"
#include "run/thread_pool.hpp"
#include "util/check.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

using workloads::Workload;

constexpr std::uint64_t kSpace = 64ull * 1024 * 1024;

struct RunResult {
  std::vector<std::uint8_t> memory;
  DynamicProfile profile;
};

/// Fresh memory, deterministic inputs, one launch at `w.test_n` with the
/// given worker count; returns the full memory image and the profile.
RunResult run_workload(const Workload& w, std::size_t workers) {
  AddressSpace mem(kSpace, "m");
  FreeListAllocator alloc(4096, mem.size() - 4096);
  const auto bufs = w.buffers(w.test_n);
  std::vector<std::uint64_t> addrs;
  for (const auto& b : bufs) {
    const auto a = alloc.allocate(b.bytes);
    EXPECT_TRUE(a.has_value()) << w.app;
    addrs.push_back(*a);
  }
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    if (!bufs[i].is_input) continue;
    for (std::uint64_t off = 0; off + 4 <= bufs[i].bytes; off += 4) {
      mem.write<float>(addrs[i] + off, 0.5f);
    }
  }

  Interpreter interp;
  Interpreter::Options options;
  options.workers = workers;
  RunResult out;
  out.profile = interp.run(w.kernel, w.dims(w.test_n), w.args(addrs, w.test_n), mem, options);
  out.memory.resize(mem.size());
  mem.copy_out(out.memory.data(), 0, out.memory.size());
  return out;
}

void expect_profiles_identical(const DynamicProfile& a, const DynamicProfile& b,
                               const std::string& label) {
  EXPECT_EQ(a.block_visits, b.block_visits) << label;
  EXPECT_EQ(a.instr_counts, b.instr_counts) << label;
  EXPECT_EQ(a.global_load_bytes, b.global_load_bytes) << label;
  EXPECT_EQ(a.global_store_bytes, b.global_store_bytes) << label;
  EXPECT_EQ(a.barriers_waited, b.barriers_waited) << label;
  EXPECT_EQ(a.sfu_instrs, b.sfu_instrs) << label;
  EXPECT_EQ(a.sqrt_instrs, b.sqrt_instrs) << label;
}

class InterpParallelTest : public ::testing::TestWithParam<std::string> {
 protected:
  static const std::vector<Workload>& suite() {
    static const std::vector<Workload> s = workloads::make_suite();
    return s;
  }
  const Workload& workload() const { return workloads::find(suite(), GetParam()); }
};

TEST_P(InterpParallelTest, MemoryAndProfileBitIdenticalAcrossWorkerCounts) {
  const Workload& w = workload();
  const RunResult serial = run_workload(w, 1);
  for (std::size_t workers : {2u, 4u, 8u}) {
    const RunResult par = run_workload(w, workers);
    const std::string label = w.app + " @ workers=" + std::to_string(workers);
    EXPECT_TRUE(par.memory == serial.memory) << label << ": memory image diverged";
    expect_profiles_identical(serial.profile, par.profile, label);
  }
}

TEST_P(InterpParallelTest, NestedRunInsidePoolWorkerMatchesTopLevelRun) {
  // Inside a sweep worker the interpreter must collapse to serial (nested
  // budgeting) and still produce the identical result.
  const Workload& w = workload();
  const RunResult top = run_workload(w, 8);
  RunResult nested;
  run::ThreadPool pool(2);
  run::parallel_for(pool, 1, [&](std::size_t) {
    EXPECT_TRUE(run::ThreadPool::on_worker_thread());
    EXPECT_EQ(run::inner_parallel_workers(8), 1u);
    nested = run_workload(w, 8);
  });
  EXPECT_TRUE(nested.memory == top.memory) << w.app << ": nested memory image diverged";
  expect_profiles_identical(top.profile, nested.profile, w.app + " nested");
}

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const auto& w : workloads::make_suite()) names.push_back(w.app);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Suite, InterpParallelTest, ::testing::ValuesIn(all_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return n;
                         });

// --- atomic serial fallback ---------------------------------------------------

TEST(InterpParallel, AtomicDetectionMatchesKernelScan) {
  for (const Workload& w : workloads::make_suite()) {
    bool has_atomic = false;
    for (const auto& b : w.kernel.blocks) {
      for (const auto& in : b.instrs) {
        if (in.op == Opcode::kAtomAddGlobalI64 || in.op == Opcode::kAtomAddGlobalF32) {
          has_atomic = true;
        }
      }
    }
    EXPECT_EQ(Interpreter::uses_global_atomics(w.kernel), has_atomic) << w.app;
  }
  // The suite must actually exercise the fallback path.
  EXPECT_TRUE(Interpreter::uses_global_atomics(
      workloads::find(workloads::make_suite(), "histogram").kernel));
}

TEST(InterpParallel, FloatAtomicAccumulationOrderSurvivesParallelRequest) {
  // f32 addition is not associative: thread t adds 2^(t mod 24) into one
  // cell, so any reordering of the additions across blocks changes the
  // rounded result. With 256 blocks (> 64 chunks) and 8 requested workers,
  // byte-exact equality with the serial run proves the atomic kernel really
  // fell back to canonical serial chunk order.
  KernelBuilder b("fatom", 1);
  const auto out = b.reg(), ctaid = b.reg(), tid = b.reg(), ntid = b.reg(), gid = b.reg(),
             t24 = b.reg(), lim = b.reg(), one = b.reg(), v = b.reg();
  b.block("entry");
  b.ld_param(out, 0);
  b.special(ctaid, SpecialReg::kCtaidX);
  b.special(ntid, SpecialReg::kNtidX);
  b.special(tid, SpecialReg::kTidX);
  b.mul_i(gid, ctaid, ntid);
  b.add_i(gid, gid, tid);
  b.mov_imm_i(lim, 24);
  b.rem_i(t24, gid, lim);
  b.mov_imm_i(one, 1);
  b.shl_b(t24, one, t24);  // 2^(gid % 24), exactly representable in f32
  b.cvt_i_to_f32(v, t24);
  b.atom_add_global_f32(v, out);
  b.ret();
  const KernelIR ir = b.build();
  ASSERT_TRUE(Interpreter::uses_global_atomics(ir));

  KernelArgs args;
  args.push_ptr(64);
  LaunchDims dims;
  dims.block_x = 8;
  dims.grid_x = 256;

  std::uint32_t serial_bits = 0;
  {
    AddressSpace mem(1 << 16, "m");
    Interpreter::Options opts;
    opts.workers = 1;
    Interpreter().run(ir, dims, args, mem, opts);
    serial_bits = std::bit_cast<std::uint32_t>(mem.read<float>(64));
  }
  {
    AddressSpace mem(1 << 16, "m");
    Interpreter::Options opts;
    opts.workers = 8;
    Interpreter().run(ir, dims, args, mem, opts);
    EXPECT_EQ(std::bit_cast<std::uint32_t>(mem.read<float>(64)), serial_bits);
  }
}

// --- canonical chunking -------------------------------------------------------

TEST(InterpParallel, CanonicalChunksDependOnlyOnTheGrid) {
  LaunchDims d;
  d.grid_x = 1;
  EXPECT_EQ(Interpreter::canonical_chunks(d), 1u);
  d.grid_x = 63;
  EXPECT_EQ(Interpreter::canonical_chunks(d), 63u);
  d.grid_x = 64;
  EXPECT_EQ(Interpreter::canonical_chunks(d), 64u);
  d.grid_x = 1000;
  EXPECT_EQ(Interpreter::canonical_chunks(d), 64u);
  d.grid_x = 10;
  d.grid_y = 10;
  EXPECT_EQ(Interpreter::canonical_chunks(d), 64u);
  // block_x/block_y never enter.
  d.block_x = 128;
  EXPECT_EQ(Interpreter::canonical_chunks(d), 64u);
}

// --- hooks --------------------------------------------------------------------

/// Simple guarded store kernel: thread gid stores gid into out[gid].
KernelIR make_store_kernel(const char* name) {
  KernelBuilder b(name, 2);
  const auto out = b.reg(), n = b.reg(), ctaid = b.reg(), ntid = b.reg(), tid = b.reg(),
             gid = b.reg(), cond = b.reg(), addr = b.reg();
  b.block("entry");
  b.ld_param(out, 0);
  b.ld_param(n, 1);
  b.special(ctaid, SpecialReg::kCtaidX);
  b.special(ntid, SpecialReg::kNtidX);
  b.special(tid, SpecialReg::kTidX);
  b.mul_i(gid, ctaid, ntid);
  b.add_i(gid, gid, tid);
  b.set_lt_i(cond, gid, n);
  b.bra_z(cond, "exit");
  b.block("body");
  b.addr_of(addr, out, gid, 3);
  b.st_global_i64(gid, addr);
  b.ret();
  b.block("exit");
  b.ret();
  return b.build();
}

TEST(InterpParallel, LegacyMemHookSeesDeterministicSerialOrder) {
  const KernelIR ir = make_store_kernel("hook");
  KernelArgs args;
  args.push_ptr(0);
  args.push_i64(1000);
  LaunchDims dims;
  dims.block_x = 8;
  dims.grid_x = 128;

  using Access = std::tuple<std::uint64_t, std::uint32_t, bool>;
  auto trace = [&](std::size_t workers) {
    AddressSpace mem(1 << 16, "m");
    std::vector<Access> log;
    Interpreter::Options opts;
    opts.workers = workers;
    opts.mem_hook = [&log](std::uint64_t addr, std::uint32_t bytes, bool is_store) {
      log.emplace_back(addr, bytes, is_store);
    };
    Interpreter().run(ir, dims, args, mem, opts);
    return log;
  };

  const auto serial = trace(1);
  EXPECT_EQ(serial.size(), 1000u);
  // Requesting 8 workers with a legacy hook must not change the access order.
  EXPECT_TRUE(trace(8) == serial);
}

TEST(InterpParallel, MemHookAndShardHookAreMutuallyExclusive) {
  const KernelIR ir = make_store_kernel("both");
  KernelArgs args;
  args.push_ptr(0);
  args.push_i64(8);
  AddressSpace mem(1 << 16, "m");
  Interpreter::Options opts;
  opts.mem_hook = [](std::uint64_t, std::uint32_t, bool) {};
  opts.shard_hook = [](std::size_t) { return MemAccessHook{}; };
  EXPECT_THROW(Interpreter().run(ir, LaunchDims{}, args, mem, opts), ContractError);
}

TEST(InterpParallel, ShardHookCoversEveryChunkAndAllTraffic) {
  const KernelIR ir = make_store_kernel("shards");
  KernelArgs args;
  args.push_ptr(0);
  args.push_i64(1000);
  LaunchDims dims;
  dims.block_x = 8;
  dims.grid_x = 128;
  const std::size_t chunks = Interpreter::canonical_chunks(dims);

  AddressSpace mem(1 << 16, "m");
  std::mutex mu;
  std::set<std::size_t> seen_chunks;
  std::atomic<std::uint64_t> bytes{0};
  Interpreter::Options opts;
  opts.workers = 8;
  opts.shard_hook = [&](std::size_t chunk) -> MemAccessHook {
    {
      std::lock_guard<std::mutex> lock(mu);
      seen_chunks.insert(chunk);
    }
    return [&bytes](std::uint64_t, std::uint32_t n, bool) {
      bytes.fetch_add(n, std::memory_order_relaxed);
    };
  };
  const DynamicProfile p = Interpreter().run(ir, dims, args, mem, opts);
  EXPECT_EQ(seen_chunks.size(), chunks);
  EXPECT_EQ(bytes.load(), p.global_load_bytes + p.global_store_bytes);
}

// --- strict barrier diagnostics ----------------------------------------------

KernelIR make_divergent_barrier_kernel() {
  // Threads with tid < ntid/2 retire immediately; the rest hit bar.sync.
  KernelBuilder b("diverge", 0);
  const auto tid = b.reg(), ntid = b.reg(), half = b.reg(), two = b.reg(), cond = b.reg();
  b.block("entry");
  b.special(tid, SpecialReg::kTidX);
  b.special(ntid, SpecialReg::kNtidX);
  b.mov_imm_i(two, 2);
  b.div_i(half, ntid, two);
  b.set_lt_i(cond, tid, half);
  b.bra_z(cond, "wait");
  b.block("early");
  b.ret();
  b.block("wait");
  b.bar();
  b.ret();
  return b.build();
}

TEST(InterpParallel, DivergentBarrierReleasesSilentlyByDefault) {
  const KernelIR ir = make_divergent_barrier_kernel();
  AddressSpace mem(1 << 16, "m");
  LaunchDims dims;
  dims.block_x = 8;
  const DynamicProfile p = Interpreter().run(ir, dims, KernelArgs{}, mem);
  EXPECT_EQ(p.barriers_waited, 1u);  // CUDA exited-thread rule: it releases
}

TEST(InterpParallel, StrictBarriersDiagnoseDivergentExit) {
  const KernelIR ir = make_divergent_barrier_kernel();
  AddressSpace mem(1 << 16, "m");
  LaunchDims dims;
  dims.block_x = 8;
  dims.grid_x = 4;
  for (std::size_t workers : {1u, 8u}) {
    Interpreter::Options opts;
    opts.strict_barriers = true;
    opts.workers = workers;
    try {
      Interpreter().run(ir, dims, KernelArgs{}, mem, opts);
      FAIL() << "expected strict-barrier ContractError at workers=" << workers;
    } catch (const ContractError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("strict barrier"), std::string::npos) << what;
      EXPECT_NE(what.find("diverge"), std::string::npos) << what;  // kernel name
      EXPECT_NE(what.find("retired"), std::string::npos) << what;
    }
  }
}

TEST(InterpParallel, StrictBarriersAcceptUniformBarriers) {
  // Every thread reaches the barrier: strict mode must stay silent.
  KernelBuilder b("uniform", 0);
  b.block("entry");
  b.bar();
  b.ret();
  const KernelIR ir = b.build();
  AddressSpace mem(1 << 16, "m");
  LaunchDims dims;
  dims.block_x = 8;
  Interpreter::Options opts;
  opts.strict_barriers = true;
  const DynamicProfile p = Interpreter().run(ir, dims, KernelArgs{}, mem, opts);
  EXPECT_EQ(p.barriers_waited, 1u);
}

// --- error determinism --------------------------------------------------------

TEST(InterpParallel, RunawayKernelThrowsForEveryWorkerCount) {
  KernelBuilder b("inf", 0);
  b.block("entry");
  b.jmp("entry");
  const KernelIR ir = b.build();
  LaunchDims dims;
  dims.grid_x = 128;
  for (std::size_t workers : {1u, 8u}) {
    AddressSpace mem(1 << 16, "m");
    Interpreter::Options opts;
    opts.max_instrs_per_thread = 1000;
    opts.workers = workers;
    EXPECT_THROW(Interpreter().run(ir, dims, KernelArgs{}, mem, opts), ContractError);
  }
}

// --- decode cache -------------------------------------------------------------

TEST(InterpParallel, DecodedCacheReusesAndInvalidates) {
  using interp_detail::DecodedCache;
  KernelIR ir = make_store_kernel("cache");

  const auto p1 = DecodedCache::instance().get(ir);
  const auto p2 = DecodedCache::instance().get(ir);
  EXPECT_EQ(p1.get(), p2.get());  // warm hit: same decode

  // Rebuild the kernel in place (same KernelIR object, different body): the
  // structural fingerprint must change and the next get() must re-decode.
  const KernelIR replacement = make_divergent_barrier_kernel();
  ir.blocks = replacement.blocks;
  ir.num_regs = replacement.num_regs;
  ir.num_params = replacement.num_params;
  ir.shared_bytes = replacement.shared_bytes;
  const auto p3 = DecodedCache::instance().get(ir);
  EXPECT_NE(p1.get(), p3.get());
  EXPECT_NE(p1->fingerprint, p3->fingerprint);

  // Renaming alone is not a semantic change.
  KernelIR renamed = replacement;
  renamed.name = "other-name";
  EXPECT_EQ(interp_detail::kernel_fingerprint(renamed),
            interp_detail::kernel_fingerprint(replacement));
}

TEST(InterpParallel, RebuiltKernelExecutesNewBodyThroughTheCache) {
  // End-to-end invalidation: run, mutate in place, run again — the second
  // run must reflect the new body, not the cached decode of the old one.
  KernelIR ir;
  {
    KernelBuilder b("mut", 1);
    const auto out = b.reg(), v = b.reg();
    b.block("entry");
    b.ld_param(out, 0);
    b.mov_imm_i(v, 111);
    b.st_global_i64(v, out);
    b.ret();
    ir = b.build();
  }
  AddressSpace mem(1 << 16, "m");
  KernelArgs args;
  args.push_ptr(64);
  Interpreter().run(ir, LaunchDims{}, args, mem);
  EXPECT_EQ(mem.read<std::int64_t>(64), 111);

  {
    KernelBuilder b("mut", 1);
    const auto out = b.reg(), v = b.reg();
    b.block("entry");
    b.ld_param(out, 0);
    b.mov_imm_i(v, 222);
    b.st_global_i64(v, out);
    b.ret();
    const KernelIR next = b.build();
    ir.blocks = next.blocks;
  }
  Interpreter().run(ir, LaunchDims{}, args, mem);
  EXPECT_EQ(mem.read<std::int64_t>(64), 222);
}

}  // namespace
}  // namespace sigvp
