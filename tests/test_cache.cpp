#include <gtest/gtest.h>

#include "gpu/cache.hpp"
#include "gpu/prob_cache.hpp"
#include "util/check.hpp"

namespace sigvp {
namespace {

CacheConfig small_cache() {
  return CacheConfig{1024, 64, 2};  // 16 lines, 8 sets, 2-way
}

TEST(Cache, ColdMissThenHit) {
  CacheModel c(small_cache());
  EXPECT_EQ(c.access(0, 4), 1u);   // miss
  EXPECT_EQ(c.access(4, 4), 0u);   // same line: hit
  EXPECT_EQ(c.stats().accesses, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(Cache, AccessSpanningLinesTouchesEach) {
  CacheModel c(small_cache());
  EXPECT_EQ(c.access(60, 8), 2u);  // crosses the 64-byte boundary
  EXPECT_EQ(c.stats().accesses, 2u);
}

TEST(Cache, LruEvictionWithinSet) {
  CacheModel c(small_cache());
  // Three lines mapping to the same set of a 2-way cache: set = line % 8.
  const std::uint64_t a = 0 * 64, b2 = 8 * 64, d = 16 * 64;
  c.access(a, 4);
  c.access(b2, 4);
  c.access(a, 4);   // refresh a -> b2 is LRU
  c.access(d, 4);   // evicts b2
  c.reset_stats();
  c.access(a, 4);
  EXPECT_EQ(c.stats().misses, 0u);
  c.access(b2, 4);
  EXPECT_EQ(c.stats().misses, 1u);  // b2 was evicted
}

TEST(Cache, FlushInvalidatesEverything) {
  CacheModel c(small_cache());
  c.access(0, 4);
  c.flush();
  c.reset_stats();
  c.access(0, 4);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, WorkingSetLargerThanCacheThrashes) {
  CacheModel c(small_cache());  // 1 KiB
  // Stream 8 KiB twice; second pass still misses (capacity).
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t addr = 0; addr < 8192; addr += 64) c.access(addr, 4);
  }
  EXPECT_GT(c.stats().miss_rate(), 0.9);
}

TEST(Cache, WorkingSetSmallerThanCacheMostlyHits) {
  CacheModel c(small_cache());
  for (int pass = 0; pass < 10; ++pass) {
    for (std::uint64_t addr = 0; addr < 512; addr += 64) c.access(addr, 4);
  }
  EXPECT_LT(c.stats().miss_rate(), 0.15);
}

TEST(Cache, RejectsBadConfig) {
  EXPECT_THROW(CacheModel(CacheConfig{1024, 48, 2}), ContractError);   // non-pow2 line
  EXPECT_THROW(CacheModel(CacheConfig{1024, 64, 0}), ContractError);   // zero ways
  CacheModel ok(small_cache());
  EXPECT_THROW(ok.access(0, 0), ContractError);
}

TEST(ProbCache, ColdMissesMatchFootprint) {
  ProbCacheModel p(CacheConfig{512 * 1024, 128, 8});
  MemoryBehavior b;
  b.footprint_bytes = 128 * 1000;
  b.accesses = 1000;
  b.reuse_fraction = 1.0;
  b.coalescing = 0.0;
  // Footprint fits in cache: only compulsory misses.
  EXPECT_NEAR(p.expected_misses(b), 1000.0, 1.0);
}

TEST(ProbCache, CapacityMissesGrowWithFootprint) {
  ProbCacheModel p(CacheConfig{64 * 1024, 128, 8});
  MemoryBehavior small_fp{32 * 1024, 100000, 0.5, 0.5};
  MemoryBehavior large_fp{4 * 1024 * 1024, 100000, 0.5, 0.5};
  EXPECT_LT(p.expected_misses(small_fp), p.expected_misses(large_fp));
}

TEST(ProbCache, CoalescingReducesEffectiveAccesses) {
  ProbCacheModel p(CacheConfig{64 * 1024, 128, 8});
  MemoryBehavior scattered{8 * 1024 * 1024, 1000000, 0.2, 0.0};
  MemoryBehavior coalesced = scattered;
  coalesced.coalescing = 1.0;
  EXPECT_LT(p.expected_misses(coalesced), p.expected_misses(scattered));
}

TEST(ProbCache, ZeroTrafficMeansZeroMisses) {
  ProbCacheModel p(CacheConfig{64 * 1024, 128, 8});
  EXPECT_DOUBLE_EQ(p.expected_misses(MemoryBehavior{}), 0.0);
  EXPECT_DOUBLE_EQ(p.expected_miss_rate(MemoryBehavior{}), 0.0);
}

TEST(ProbCache, MissRateBoundedByOne) {
  ProbCacheModel p(CacheConfig{1024, 128, 8});
  MemoryBehavior b{1 << 30, 100, 0.0, 0.0};
  EXPECT_LE(p.expected_miss_rate(b), 1.0);
}

TEST(CacheStats, Accumulates) {
  CacheStats a{10, 6, 4};
  CacheStats b{10, 10, 0};
  a += b;
  EXPECT_EQ(a.accesses, 20u);
  EXPECT_DOUBLE_EQ(a.miss_rate(), 0.2);
}

}  // namespace
}  // namespace sigvp
