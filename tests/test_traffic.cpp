#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "run/traffic.hpp"
#include "util/check.hpp"
#include "workloads/spec.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

using run::traffic::Shape;
using run::traffic::TrafficConfig;
using run::traffic::arrival_times;

TrafficConfig poisson(double mean, std::uint64_t seed = 1) {
  TrafficConfig tc;
  tc.shape = Shape::kPoisson;
  tc.mean_interarrival_us = mean;
  tc.seed = seed;
  return tc;
}

TrafficConfig bursty(double mean, double on, double off, std::uint64_t seed = 1) {
  TrafficConfig tc;
  tc.shape = Shape::kBursty;
  tc.mean_interarrival_us = mean;
  tc.burst_on_us = on;
  tc.burst_off_us = off;
  tc.seed = seed;
  return tc;
}

// --- Determinism: the generator is a pure function of (config, stream) ------

TEST(Traffic, SameSeedYieldsIdenticalSequences) {
  for (const Shape shape : {Shape::kPoisson, Shape::kBursty}) {
    TrafficConfig tc = shape == Shape::kPoisson ? poisson(500.0, 99)
                                                : bursty(500.0, 2000.0, 6000.0, 99);
    const auto a = arrival_times(tc, 3, 500);
    const auto b = arrival_times(tc, 3, 500);
    EXPECT_EQ(a, b) << run::traffic::shape_name(shape);
  }
}

TEST(Traffic, DistinctStreamsAndSeedsDiverge) {
  const TrafficConfig tc = poisson(1000.0, 7);
  const auto s0 = arrival_times(tc, 0, 64);
  const auto s1 = arrival_times(tc, 1, 64);
  EXPECT_NE(s0, s1);
  TrafficConfig other = tc;
  other.seed = 8;
  EXPECT_NE(s0, arrival_times(other, 0, 64));
}

TEST(Traffic, ArrivalsAreAscendingAndNonNegative) {
  for (const Shape shape : {Shape::kPoisson, Shape::kBursty}) {
    TrafficConfig tc = shape == Shape::kPoisson ? poisson(250.0)
                                                : bursty(250.0, 1000.0, 4000.0);
    const auto t = arrival_times(tc, 0, 1000);
    ASSERT_EQ(t.size(), 1000u);
    EXPECT_GE(t.front(), 0.0);
    for (std::size_t i = 1; i < t.size(); ++i) {
      EXPECT_GE(t[i], t[i - 1]) << "at " << i;
    }
  }
}

// --- Statistical shape -------------------------------------------------------

TEST(Traffic, PoissonEmpiricalMeanMatchesConfiguredRate) {
  const double mean = 1000.0;
  const std::uint32_t count = 20000;
  const auto t = arrival_times(poisson(mean, 13), 0, count);
  // Sample mean of exponential inter-arrivals: std-err = mean/sqrt(N) ≈ 7 µs,
  // so a 5% band is a >10-sigma margin — failures mean a real rate bug.
  const double empirical = t.back() / static_cast<double>(count);
  EXPECT_NEAR(empirical, mean, 0.05 * mean);
}

TEST(Traffic, BurstyArrivalsLandOnlyInOnWindows) {
  const double on = 2000.0, off = 8000.0, cycle = on + off;
  const auto t = arrival_times(bursty(500.0, on, off, 21), 2, 2000);
  for (const SimTime a : t) {
    const double phase = a - std::floor(a / cycle) * cycle;
    EXPECT_LE(phase, on + 1e-6) << "arrival " << a << " in an OFF window";
  }
}

TEST(Traffic, BurstyPreservesLongRunRate) {
  const double mean = 500.0;
  const std::uint32_t count = 20000;
  const auto t = arrival_times(bursty(mean, 2000.0, 8000.0, 34), 0, count);
  // The ON/OFF compression must keep the overall rate at 1/mean: the duty
  // cycle shortens the active windows, not the request budget.
  const double empirical = t.back() / static_cast<double>(count);
  EXPECT_NEAR(empirical, mean, 0.05 * mean);
}

TEST(Traffic, BurstyDutyCycleConcentratesLoad) {
  const double on = 2000.0, off = 8000.0, cycle = on + off;
  const auto t = arrival_times(bursty(1000.0, on, off, 5), 0, 5000);
  // All arrivals inside ON windows ⇒ instantaneous ON-rate is 1/duty times
  // the long-run rate; spot-check via the mean intra-ON gap.
  double on_gaps = 0.0;
  std::uint64_t gap_count = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    const double gap = t[i] - t[i - 1];
    if (gap < off) {  // same ON window (an OFF hop is >= off µs)
      on_gaps += gap;
      ++gap_count;
    }
  }
  ASSERT_GT(gap_count, 1000u);
  // Intra-ON gaps are a truncated exponential (a gap that would cross the
  // window edge becomes an OFF hop), so their mean sits below duty * mean
  // but far under the long-run mean: the burst concentrates the load by
  // roughly 1/duty. With duty 0.2 that's 5x; require at least 4x.
  const double duty = on / cycle;
  const double mean_on_gap = on_gaps / static_cast<double>(gap_count);
  EXPECT_LE(mean_on_gap, 1000.0 * duty * 1.1);
  EXPECT_LT(mean_on_gap, 1000.0 / 4.0);
}

// --- WorkloadSpec -> per-VP request streams ---------------------------------

class SpecTest : public ::testing::Test {
 protected:
  std::vector<workloads::Workload> apps = workloads::make_app_suite();

  workloads::WorkloadSpec base_spec() {
    workloads::WorkloadSpec spec;
    spec.request_count = 200;
    spec.vp_count = 4;
    spec.mix = {{"graphAnalytics", 50}, {"mlInference", 30}, {"camPipeline", 20}};
    spec.base_n = 1024;
    spec.seed = 11;
    return spec;
  }
};

TEST_F(SpecTest, StreamsAreDeterministicAndShaped) {
  const auto spec = base_spec();
  const auto a = workloads::build_request_streams(spec, apps);
  const auto b = workloads::build_request_streams(spec, apps);
  ASSERT_EQ(a.size(), spec.vp_count);
  for (std::size_t vp = 0; vp < a.size(); ++vp) {
    ASSERT_EQ(a[vp].size(), spec.request_count);
    ASSERT_EQ(b[vp].size(), spec.request_count);
    for (std::size_t i = 0; i < a[vp].size(); ++i) {
      EXPECT_EQ(a[vp][i].workload, b[vp][i].workload);
      EXPECT_EQ(a[vp][i].n, b[vp][i].n);
      EXPECT_EQ(a[vp][i].jitter, b[vp][i].jitter);
    }
  }
}

TEST_F(SpecTest, MixPercentagesAreHonoredApproximately) {
  const auto spec = base_spec();
  const auto streams = workloads::build_request_streams(spec, apps);
  std::uint64_t graph = 0, total = 0;
  for (const auto& stream : streams) {
    for (const auto& req : stream) {
      ++total;
      if (req.workload->app == "graphAnalytics") ++graph;
    }
  }
  ASSERT_EQ(total, 4u * 200u);
  // 800 draws at p=0.5: std-err ≈ 1.8%, so ±8 points is a wide-open band.
  EXPECT_NEAR(static_cast<double>(graph) / static_cast<double>(total), 0.50, 0.08);
}

TEST_F(SpecTest, SizeJitterStaysInBandAndAligned) {
  auto spec = base_spec();
  spec.n_jitter_pct = 25;
  const auto streams = workloads::build_request_streams(spec, apps);
  bool varied = false;
  for (const auto& stream : streams) {
    for (const auto& req : stream) {
      EXPECT_GE(req.n, 32u);
      EXPECT_EQ(req.n % 32, 0u) << "size must satisfy every app's layout";
      EXPECT_GE(req.n, spec.base_n * 75 / 100 / 32 * 32);
      EXPECT_LE(req.n, spec.base_n * 125 / 100);
      varied = varied || req.n != spec.base_n;
    }
  }
  EXPECT_TRUE(varied) << "25% jitter never moved a size";
}

TEST_F(SpecTest, ScalarJitterIsPerVpStable) {
  auto spec = base_spec();
  spec.scalar_jitter = true;
  const auto streams = workloads::build_request_streams(spec, apps);
  std::set<std::uint64_t> per_vp;
  for (const auto& stream : streams) {
    ASSERT_FALSE(stream.empty());
    const std::uint64_t jitter = stream.front().jitter;
    EXPECT_NE(jitter, 0u) << "scalar_jitter must arm a nonzero seed";
    for (const auto& req : stream) {
      EXPECT_EQ(req.jitter, jitter) << "jitter must be stable within a VP";
    }
    per_vp.insert(jitter);
  }
  EXPECT_EQ(per_vp.size(), streams.size()) << "VPs must get distinct scalar seeds";

  spec.scalar_jitter = false;
  for (const auto& stream : workloads::build_request_streams(spec, apps)) {
    for (const auto& req : stream) EXPECT_EQ(req.jitter, 0u);
  }
}

TEST_F(SpecTest, MalformedSpecsAreRejected) {
  auto spec = base_spec();
  spec.mix = {{"graphAnalytics", 60}, {"mlInference", 30}};  // sums to 90
  EXPECT_THROW(workloads::build_request_streams(spec, apps), ContractError);

  spec = base_spec();
  spec.mix = {{"noSuchApp", 100}};
  EXPECT_THROW(workloads::build_request_streams(spec, apps), ContractError);

  spec = base_spec();
  spec.mix.clear();
  EXPECT_THROW(workloads::build_request_streams(spec, apps), ContractError);

  spec = base_spec();
  spec.request_count = 0;
  EXPECT_THROW(workloads::build_request_streams(spec, apps), ContractError);
}

}  // namespace
}  // namespace sigvp
