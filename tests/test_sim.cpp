#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "util/check.hpp"

namespace sigvp {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30.0, [&] { order.push_back(3); });
  q.schedule_at(10.0, [&] { order.push_back(1); });
  q.schedule_at(20.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 30.0);
}

TEST(EventQueue, SameTimestampFifoTieBreak) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] {
    ++fired;
    q.schedule_after(1.0, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule_at(10.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(5.0, [] {}), ContractError);
  EXPECT_THROW(q.schedule_after(-1.0, [] {}), ContractError);
}

TEST(EventQueue, RunUntilAdvancesClockEvenWhenIdle) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10.0, [&] { ++fired; });
  q.schedule_at(50.0, [&] { ++fired; });
  q.run_until(20.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 20.0);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_EQ(q.events_processed(), 0u);
}

TEST(Engine, JobsSerializeFifo) {
  EventQueue q;
  Engine e(q, "test");
  std::vector<SimTime> ends;
  e.submit(10.0, [&](SimTime t) { ends.push_back(t); });
  e.submit(5.0, [&](SimTime t) { ends.push_back(t); });
  q.run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_DOUBLE_EQ(ends[0], 10.0);
  EXPECT_DOUBLE_EQ(ends[1], 15.0);
  EXPECT_DOUBLE_EQ(e.busy_time(), 15.0);
}

TEST(Engine, JobSubmittedLaterStartsAtSubmissionTime) {
  EventQueue q;
  Engine e(q, "test");
  SimTime end = 0;
  q.schedule_at(100.0, [&] { e.submit(5.0, [&](SimTime t) { end = t; }); });
  q.run();
  EXPECT_DOUBLE_EQ(end, 105.0);
}

TEST(Engine, UtilizationIsBusyOverHorizon) {
  EventQueue q;
  Engine e(q, "test");
  e.submit(25.0, {});
  q.run();
  EXPECT_DOUBLE_EQ(e.utilization(100.0), 0.25);
  EXPECT_DOUBLE_EQ(e.utilization(0.0), 0.0);
}

TEST(Engine, RejectsNegativeDuration) {
  EventQueue q;
  Engine e(q, "test");
  EXPECT_THROW(e.submit(-1.0, {}), ContractError);
}

TEST(Engine, ZeroDurationJobCompletesAtNow) {
  EventQueue q;
  Engine e(q, "test");
  SimTime end = -1;
  e.submit(0.0, [&](SimTime t) { end = t; });
  q.run();
  EXPECT_DOUBLE_EQ(end, 0.0);
  EXPECT_EQ(e.jobs_submitted(), 1u);
}

}  // namespace
}  // namespace sigvp
