#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "util/check.hpp"

namespace sigvp {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30.0, [&] { order.push_back(3); });
  q.schedule_at(10.0, [&] { order.push_back(1); });
  q.schedule_at(20.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 30.0);
}

TEST(EventQueue, SameTimestampFifoTieBreak) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] {
    ++fired;
    q.schedule_after(1.0, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule_at(10.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(5.0, [] {}), ContractError);
  EXPECT_THROW(q.schedule_after(-1.0, [] {}), ContractError);
}

TEST(EventQueue, RunUntilAdvancesClockEvenWhenIdle) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10.0, [&] { ++fired; });
  q.schedule_at(50.0, [&] { ++fired; });
  q.run_until(20.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 20.0);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_EQ(q.events_processed(), 0u);
}

TEST(EventQueue, NextEventTimePeeksWithoutPopping) {
  EventQueue q;
  q.schedule_at(30.0, [] {});
  q.schedule_at(10.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_event_time(), 10.0);
  EXPECT_EQ(q.pending(), 2u);  // peek must not consume
  q.step();
  EXPECT_DOUBLE_EQ(q.next_event_time(), 30.0);
  q.run();
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.next_event_time(), ContractError);
}

TEST(EventQueue, ReservePreservesOrderAndCounters) {
  // reserve() is an allocation hint only: bulk insertion after it must pop
  // in exactly the same (time, seq) order, and resident_bytes must reflect
  // the reserved capacity.
  EventQueue q;
  q.reserve(1000);
  EXPECT_GE(q.resident_bytes(), sizeof(EventQueue) + 1000 * 3 * sizeof(void*));
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    q.schedule_at(static_cast<SimTime>(100 - i), [&order, i] { order.push_back(i); });
  }
  q.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], 99 - i);
  EXPECT_EQ(q.events_processed(), 100u);
}

TEST(EventQueue, InterleavedTimesKeepPerTimestampFifo) {
  // Mixed timestamps with heavy ties: within each timestamp, insertion
  // order wins — the total (time, seq) order the fleet executor's canonical
  // message sort relies on.
  EventQueue q;
  std::vector<std::pair<int, int>> order;  // (time, insert index at that time)
  for (int round = 0; round < 5; ++round) {
    for (int t = 1; t <= 3; ++t) {
      q.schedule_at(static_cast<SimTime>(t), [&order, t, round] {
        order.emplace_back(t, round);
      });
    }
  }
  q.run();
  ASSERT_EQ(order.size(), 15u);
  std::size_t idx = 0;
  for (int t = 1; t <= 3; ++t) {
    for (int round = 0; round < 5; ++round) {
      EXPECT_EQ(order[idx], std::make_pair(t, round)) << "position " << idx;
      ++idx;
    }
  }
}

TEST(Engine, JobsSerializeFifo) {
  EventQueue q;
  Engine e(q, "test");
  std::vector<SimTime> ends;
  e.submit(10.0, [&](SimTime t) { ends.push_back(t); });
  e.submit(5.0, [&](SimTime t) { ends.push_back(t); });
  q.run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_DOUBLE_EQ(ends[0], 10.0);
  EXPECT_DOUBLE_EQ(ends[1], 15.0);
  EXPECT_DOUBLE_EQ(e.busy_time(), 15.0);
}

TEST(Engine, JobSubmittedLaterStartsAtSubmissionTime) {
  EventQueue q;
  Engine e(q, "test");
  SimTime end = 0;
  q.schedule_at(100.0, [&] { e.submit(5.0, [&](SimTime t) { end = t; }); });
  q.run();
  EXPECT_DOUBLE_EQ(end, 105.0);
}

TEST(Engine, UtilizationIsBusyOverHorizon) {
  EventQueue q;
  Engine e(q, "test");
  e.submit(25.0, {});
  q.run();
  EXPECT_DOUBLE_EQ(e.utilization(100.0), 0.25);
  EXPECT_DOUBLE_EQ(e.utilization(0.0), 0.0);
}

TEST(Engine, RejectsNegativeDuration) {
  EventQueue q;
  Engine e(q, "test");
  EXPECT_THROW(e.submit(-1.0, {}), ContractError);
}

TEST(Engine, ZeroDurationJobCompletesAtNow) {
  EventQueue q;
  Engine e(q, "test");
  SimTime end = -1;
  e.submit(0.0, [&](SimTime t) { end = t; });
  q.run();
  EXPECT_DOUBLE_EQ(end, 0.0);
  EXPECT_EQ(e.jobs_submitted(), 1u);
}

}  // namespace
}  // namespace sigvp
