#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/disasm.hpp"
#include "ir/validate.hpp"
#include "util/check.hpp"

namespace sigvp {
namespace {

KernelIR tiny_kernel() {
  KernelBuilder b("tiny", 1);
  const auto r0 = b.reg(), r1 = b.reg();
  b.block("entry");
  b.ld_param(r0, 0);
  b.mov_imm_i(r1, 7);
  b.add_i(r0, r0, r1);
  b.ret();
  return b.build();
}

TEST(Builder, BuildsValidKernel) {
  const KernelIR ir = tiny_kernel();
  EXPECT_EQ(ir.name, "tiny");
  EXPECT_EQ(ir.blocks.size(), 1u);
  EXPECT_EQ(ir.num_regs, 2u);
  EXPECT_EQ(ir.static_size(), 4u);
}

TEST(Builder, ResolvesForwardLabels) {
  KernelBuilder b("fwd", 0);
  const auto c = b.reg();
  b.block("entry");
  b.mov_imm_i(c, 0);
  b.bra_z(c, "target");
  b.block("mid");
  b.ret();
  b.block("target");
  b.ret();
  const KernelIR ir = b.build();
  EXPECT_EQ(ir.blocks[0].instrs.back().imm, 2);  // "target" is block 2
}

TEST(Builder, RejectsUndefinedLabel) {
  KernelBuilder b("bad", 0);
  b.block("entry");
  b.jmp("nowhere");
  EXPECT_THROW(b.build(), ContractError);
}

TEST(Builder, RejectsDuplicateLabel) {
  KernelBuilder b("dup", 0);
  b.block("entry");
  b.ret();
  EXPECT_THROW(b.block("entry"), ContractError);
}

TEST(Builder, RejectsEmitAfterTerminator) {
  KernelBuilder b("after", 0);
  const auto r = b.reg();
  b.block("entry");
  b.ret();
  EXPECT_THROW(b.mov_imm_i(r, 1), ContractError);
}

TEST(Builder, RejectsNewBlockWithoutTerminator) {
  KernelBuilder b("unterm", 0);
  const auto r = b.reg();
  b.block("entry");
  b.mov_imm_i(r, 1);
  EXPECT_THROW(b.block("next"), ContractError);
}

TEST(Builder, RejectsParamIndexOutOfRange) {
  KernelBuilder b("param", 1);
  const auto r = b.reg();
  b.block("entry");
  EXPECT_THROW(b.ld_param(r, 3), ContractError);
}

TEST(Builder, LoopHelperProducesHeadBodyExitBlocks) {
  KernelBuilder b("loop", 0);
  const auto i = b.reg(), bound = b.reg(), step = b.reg(), acc = b.reg();
  b.block("entry");
  b.mov_imm_i(i, 0);
  b.mov_imm_i(bound, 10);
  b.mov_imm_i(step, 1);
  b.mov_imm_i(acc, 0);
  auto loop = b.loop_begin(i, bound, step, "L");
  b.add_i(acc, acc, i);
  b.loop_end(loop);
  b.ret();
  const KernelIR ir = b.build();
  ASSERT_EQ(ir.blocks.size(), 4u);
  EXPECT_EQ(ir.blocks[1].label, "L.head");
  EXPECT_EQ(ir.blocks[2].label, "L.body");
  EXPECT_EQ(ir.blocks[3].label, "L.exit");
}

TEST(Validate, ConditionalTerminatorInFinalBlockRejected) {
  KernelIR ir;
  ir.name = "bad";
  ir.num_regs = 1;
  ir.blocks.push_back(BasicBlock{"entry", {Instr{Opcode::kBraZ, 0, 0, 0, 0, 0, 0.0}}});
  EXPECT_THROW(validate_kernel(ir), ContractError);
}

TEST(Validate, BranchTargetOutOfRangeRejected) {
  KernelIR ir;
  ir.name = "bad";
  ir.num_regs = 1;
  ir.blocks.push_back(BasicBlock{"entry", {Instr{Opcode::kJmp, 0, 0, 0, 0, 99, 0.0}}});
  EXPECT_THROW(validate_kernel(ir), ContractError);
}

TEST(Validate, SharedOpWithoutSharedBytesRejected) {
  KernelIR ir;
  ir.name = "bad";
  ir.num_regs = 2;
  ir.blocks.push_back(BasicBlock{
      "entry",
      {Instr{Opcode::kLdSharedF32, 0, 1, 0, 0, 0, 0.0}, Instr{Opcode::kRet, 0, 0, 0, 0, 0, 0.0}}});
  EXPECT_THROW(validate_kernel(ir), ContractError);
}

TEST(Validate, RegisterOutOfRangeRejected) {
  KernelIR ir;
  ir.name = "bad";
  ir.num_regs = 1;
  ir.blocks.push_back(BasicBlock{
      "entry",
      {Instr{Opcode::kAddI, 0, 5, 0, 0, 0, 0.0}, Instr{Opcode::kRet, 0, 0, 0, 0, 0, 0.0}}});
  EXPECT_THROW(validate_kernel(ir), ContractError);
}

TEST(StaticCounts, ClassHistogramIsPerBlock) {
  KernelBuilder b("hist", 0);
  const auto a = b.reg(), c = b.reg();
  b.block("entry");
  b.mov_imm_f32(a, 1.0f);   // FP32? no: mov-imm classified Int
  b.add_f32(c, a, a);       // FP32
  b.and_b(c, a, a);         // Bit
  b.ret();                  // B
  const KernelIR ir = b.build();
  const ClassCounts mu = ir.blocks[0].static_counts();
  EXPECT_EQ(mu[InstrClass::kFp32], 1u);
  EXPECT_EQ(mu[InstrClass::kBit], 1u);
  EXPECT_EQ(mu[InstrClass::kBranch], 1u);
  EXPECT_EQ(mu[InstrClass::kInt], 1u);  // the immediate move
  EXPECT_EQ(mu.total(), 4u);
}

TEST(ClassCounts, ArithmeticAndScaling) {
  ClassCounts a;
  a[InstrClass::kInt] = 3;
  ClassCounts b;
  b[InstrClass::kInt] = 4;
  b[InstrClass::kFp64] = 1;
  const ClassCounts sum = a + b;
  EXPECT_EQ(sum[InstrClass::kInt], 7u);
  EXPECT_EQ(sum.scaled(2)[InstrClass::kFp64], 2u);
  EXPECT_EQ(sum.total(), 8u);
}

TEST(Opcode, EveryOpcodeHasNameAndClass) {
  // Sweep the full opcode range; names must be unique-ish and classes valid.
  for (int op = 0; op <= static_cast<int>(Opcode::kStSharedI64); ++op) {
    const Opcode o = static_cast<Opcode>(op);
    EXPECT_NE(opcode_name(o), "?") << "opcode " << op;
    const InstrClass c = instr_class(o);
    EXPECT_LT(static_cast<std::size_t>(c), kNumInstrClasses);
  }
}

TEST(Opcode, MemoryTraitsConsistent) {
  EXPECT_TRUE(is_memory_op(Opcode::kLdGlobalF32));
  EXPECT_TRUE(is_global_memory_op(Opcode::kAtomAddGlobalF32));
  EXPECT_FALSE(is_global_memory_op(Opcode::kLdSharedF32));
  EXPECT_EQ(memory_width_bytes(Opcode::kLdGlobalF64), 8u);
  EXPECT_EQ(memory_width_bytes(Opcode::kLdGlobalU8), 1u);
  EXPECT_EQ(memory_width_bytes(Opcode::kAddI), 0u);
  EXPECT_TRUE(is_terminator(Opcode::kRet));
  EXPECT_FALSE(is_terminator(Opcode::kBar));
  EXPECT_TRUE(is_branch_with_target(Opcode::kBraNZ));
  EXPECT_FALSE(is_branch_with_target(Opcode::kRet));
}

TEST(Disasm, RendersInstructionsAndBlockHistogram) {
  const KernelIR ir = tiny_kernel();
  const std::string text = disassemble(ir);
  EXPECT_NE(text.find(".kernel tiny"), std::string::npos);
  EXPECT_NE(text.find("ld.param"), std::string::npos);
  EXPECT_NE(text.find("add.i"), std::string::npos);
  EXPECT_NE(text.find("Int:3"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

TEST(Builder, RegisterBudgetEnforced) {
  KernelBuilder b("regs", 0);
  for (int i = 0; i < 256; ++i) b.reg();
  EXPECT_THROW(b.reg(), ContractError);
}

}  // namespace
}  // namespace sigvp
