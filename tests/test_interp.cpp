#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "util/check.hpp"

namespace sigvp {
namespace {

constexpr std::uint64_t kMem = 1 << 16;

/// Runs a single-thread kernel built by `body` (which must store its result
/// and `ret`), returning the dynamic profile.
DynamicProfile run1(const std::function<void(KernelBuilder&)>& body, AddressSpace& mem,
                    const KernelArgs& args = {}, std::uint32_t num_params = 0) {
  KernelBuilder b("t", num_params);
  b.block("entry");
  body(b);
  const KernelIR ir = b.build();
  Interpreter interp;
  return interp.run(ir, LaunchDims{}, args, mem);
}

// --- arithmetic op coverage (parameterized) ----------------------------------

struct F64Case {
  const char* name;
  void (KernelBuilder::*emit)(std::uint8_t, std::uint8_t, std::uint8_t);
  double a, b, expected;
};

class F64BinaryTest : public ::testing::TestWithParam<F64Case> {};

TEST_P(F64BinaryTest, ComputesExpected) {
  const F64Case& c = GetParam();
  AddressSpace mem(kMem, "m");
  run1(
      [&](KernelBuilder& b) {
        const auto ra = b.reg(), rb = b.reg(), rc = b.reg(), addr = b.reg();
        b.mov_imm_f64(ra, c.a);
        b.mov_imm_f64(rb, c.b);
        (b.*c.emit)(rc, ra, rb);
        b.mov_imm_i(addr, 0);
        b.st_global_f64(rc, addr);
        b.ret();
      },
      mem);
  EXPECT_DOUBLE_EQ(mem.read<double>(0), c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, F64BinaryTest,
    ::testing::Values(
        F64Case{"add", &KernelBuilder::add_f64, 2.5, 1.25, 3.75},
        F64Case{"sub", &KernelBuilder::sub_f64, 2.5, 1.25, 1.25},
        F64Case{"mul", &KernelBuilder::mul_f64, 2.5, 4.0, 10.0},
        F64Case{"div", &KernelBuilder::div_f64, 10.0, 4.0, 2.5},
        F64Case{"min", &KernelBuilder::min_f64, 2.0, -3.0, -3.0},
        F64Case{"max", &KernelBuilder::max_f64, 2.0, -3.0, 2.0},
        F64Case{"setlt", &KernelBuilder::set_lt_f64, 1.0, 2.0, 4.94065645841246544e-324},
        F64Case{"setge", &KernelBuilder::set_ge_f64, 1.0, 2.0, 0.0}),
    [](const auto& info) { return info.param.name; });

struct IntCase {
  const char* name;
  void (KernelBuilder::*emit)(std::uint8_t, std::uint8_t, std::uint8_t);
  std::int64_t a, b, expected;
};

class IntBinaryTest : public ::testing::TestWithParam<IntCase> {};

TEST_P(IntBinaryTest, ComputesExpected) {
  const IntCase& c = GetParam();
  AddressSpace mem(kMem, "m");
  run1(
      [&](KernelBuilder& b) {
        const auto ra = b.reg(), rb = b.reg(), rc = b.reg(), addr = b.reg();
        b.mov_imm_i(ra, c.a);
        b.mov_imm_i(rb, c.b);
        (b.*c.emit)(rc, ra, rb);
        b.mov_imm_i(addr, 0);
        b.st_global_i64(rc, addr);
        b.ret();
      },
      mem);
  EXPECT_EQ(mem.read<std::int64_t>(0), c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, IntBinaryTest,
    ::testing::Values(
        IntCase{"add", &KernelBuilder::add_i, 7, 5, 12},
        IntCase{"sub", &KernelBuilder::sub_i, 7, 5, 2},
        IntCase{"mul", &KernelBuilder::mul_i, -7, 5, -35},
        IntCase{"div", &KernelBuilder::div_i, 17, 5, 3},
        IntCase{"rem", &KernelBuilder::rem_i, 17, 5, 2},
        IntCase{"min", &KernelBuilder::min_i, -2, 3, -2},
        IntCase{"max", &KernelBuilder::max_i, -2, 3, 3},
        IntCase{"and", &KernelBuilder::and_b, 0b1100, 0b1010, 0b1000},
        IntCase{"or", &KernelBuilder::or_b, 0b1100, 0b1010, 0b1110},
        IntCase{"xor", &KernelBuilder::xor_b, 0b1100, 0b1010, 0b0110},
        IntCase{"shl", &KernelBuilder::shl_b, 3, 4, 48},
        IntCase{"shr", &KernelBuilder::shr_b, 48, 4, 3},
        IntCase{"shra", &KernelBuilder::shr_a, -16, 2, -4},
        IntCase{"setlt", &KernelBuilder::set_lt_i, 1, 2, 1},
        IntCase{"seteq", &KernelBuilder::set_eq_i, 2, 2, 1},
        IntCase{"setne", &KernelBuilder::set_ne_i, 2, 2, 0},
        IntCase{"setgt", &KernelBuilder::set_gt_i, 3, 2, 1},
        IntCase{"setle", &KernelBuilder::set_le_i, 3, 2, 0},
        IntCase{"setge", &KernelBuilder::set_ge_i, 2, 2, 1}),
    [](const auto& info) { return info.param.name; });

struct UnaryF32Case {
  const char* name;
  void (KernelBuilder::*emit)(std::uint8_t, std::uint8_t);
  float a, expected;
};

class F32UnaryTest : public ::testing::TestWithParam<UnaryF32Case> {};

TEST_P(F32UnaryTest, ComputesExpected) {
  const UnaryF32Case& c = GetParam();
  AddressSpace mem(kMem, "m");
  run1(
      [&](KernelBuilder& b) {
        const auto ra = b.reg(), rc = b.reg(), addr = b.reg();
        b.mov_imm_f32(ra, c.a);
        (b.*c.emit)(rc, ra);
        b.mov_imm_i(addr, 0);
        b.st_global_f32(rc, addr);
        b.ret();
      },
      mem);
  EXPECT_NEAR(mem.read<float>(0), c.expected, 1e-5f) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, F32UnaryTest,
    ::testing::Values(
        UnaryF32Case{"sqrt", &KernelBuilder::sqrt_f32, 9.0f, 3.0f},
        UnaryF32Case{"rsqrt", &KernelBuilder::rsqrt_f32, 4.0f, 0.5f},
        UnaryF32Case{"exp", &KernelBuilder::exp_f32, 1.0f, 2.718282f},
        UnaryF32Case{"log", &KernelBuilder::log_f32, 2.718282f, 1.0f},
        UnaryF32Case{"sin", &KernelBuilder::sin_f32, 1.5707963f, 1.0f},
        UnaryF32Case{"cos", &KernelBuilder::cos_f32, 0.0f, 1.0f},
        UnaryF32Case{"abs", &KernelBuilder::abs_f32, -2.5f, 2.5f},
        UnaryF32Case{"neg", &KernelBuilder::neg_f32, 2.5f, -2.5f},
        UnaryF32Case{"floor", &KernelBuilder::floor_f32, 2.75f, 2.0f}),
    [](const auto& info) { return info.param.name; });

// --- conversions --------------------------------------------------------------

TEST(Interp, Conversions) {
  AddressSpace mem(kMem, "m");
  run1(
      [&](KernelBuilder& b) {
        const auto i = b.reg(), f32 = b.reg(), f64 = b.reg(), back = b.reg(), addr = b.reg();
        b.mov_imm_i(i, 41);
        b.cvt_i_to_f32(f32, i);
        b.cvt_f32_to_f64(f64, f32);
        b.cvt_f64_to_i(back, f64);
        b.mov_imm_i(addr, 0);
        b.st_global_i64(back, addr);
        b.st_global_f64(f64, addr, 8);
        b.ret();
      },
      mem);
  EXPECT_EQ(mem.read<std::int64_t>(0), 41);
  EXPECT_DOUBLE_EQ(mem.read<double>(8), 41.0);
}

TEST(Interp, SelectPicksByCondition) {
  AddressSpace mem(kMem, "m");
  run1(
      [&](KernelBuilder& b) {
        const auto c = b.reg(), x = b.reg(), y = b.reg(), r = b.reg(), addr = b.reg();
        b.mov_imm_i(c, 1);
        b.mov_imm_i(x, 10);
        b.mov_imm_i(y, 20);
        b.select(r, c, x, y);
        b.mov_imm_i(addr, 0);
        b.st_global_i64(r, addr);
        b.mov_imm_i(c, 0);
        b.select(r, c, x, y);
        b.st_global_i64(r, addr, 8);
        b.ret();
      },
      mem);
  EXPECT_EQ(mem.read<std::int64_t>(0), 10);
  EXPECT_EQ(mem.read<std::int64_t>(8), 20);
}

// --- control flow ---------------------------------------------------------------

TEST(Interp, LoopAccumulates) {
  AddressSpace mem(kMem, "m");
  const DynamicProfile p = run1(
      [&](KernelBuilder& b) {
        const auto i = b.reg(), bound = b.reg(), step = b.reg(), acc = b.reg(),
                   addr = b.reg();
        b.mov_imm_i(i, 0);
        b.mov_imm_i(bound, 10);
        b.mov_imm_i(step, 1);
        b.mov_imm_i(acc, 0);
        auto loop = b.loop_begin(i, bound, step, "L");
        b.add_i(acc, acc, i);
        b.loop_end(loop);
        b.mov_imm_i(addr, 0);
        b.st_global_i64(acc, addr);
        b.ret();
      },
      mem);
  EXPECT_EQ(mem.read<std::int64_t>(0), 45);  // 0+1+...+9
  // λ: entry 1, head 11, body 10, exit 1.
  EXPECT_EQ(p.block_visits[0], 1u);
  EXPECT_EQ(p.block_visits[1], 11u);
  EXPECT_EQ(p.block_visits[2], 10u);
  EXPECT_EQ(p.block_visits[3], 1u);
}

TEST(Interp, ProfileMatchesLambdaTimesMu) {
  AddressSpace mem(kMem, "m");
  const DynamicProfile p = run1(
      [&](KernelBuilder& b) {
        const auto i = b.reg(), bound = b.reg(), step = b.reg(), acc = b.reg(),
                   f = b.reg(), addr = b.reg();
        b.mov_imm_i(i, 0);
        b.mov_imm_i(bound, 7);
        b.mov_imm_i(step, 1);
        b.mov_imm_f64(acc, 0.0);
        b.mov_imm_f64(f, 1.5);
        auto loop = b.loop_begin(i, bound, step, "L");
        b.add_f64(acc, acc, f);
        b.mul_f64(f, f, f);
        b.loop_end(loop);
        b.mov_imm_i(addr, 0);
        b.st_global_f64(acc, addr);
        b.ret();
      },
      mem);
  // Rebuild σ from λ·µ and compare with the directly counted classes.
  KernelBuilder b2("shadow", 0);
  (void)b2;
  // The kernel is not retained here; instead verify the identity generally:
  // counts_from_visits is exercised against real kernels in test_workloads.
  EXPECT_GT(p.instr_counts[InstrClass::kFp64], 0u);
  // 7 iterations × (add.f64 + mul.f64); immediate moves classify as Int.
  EXPECT_EQ(p.instr_counts[InstrClass::kFp64], 14u);
}

TEST(Interp, MultiThreadGidAndGuard) {
  AddressSpace mem(kMem, "m");
  KernelBuilder b("gid", 2);
  const auto out = b.reg(), n = b.reg(), gid = b.reg(), ctaid = b.reg(), ntid = b.reg(),
             tid = b.reg(), cond = b.reg(), addr = b.reg();
  b.block("entry");
  b.ld_param(out, 0);
  b.ld_param(n, 1);
  b.special(ctaid, SpecialReg::kCtaidX);
  b.special(ntid, SpecialReg::kNtidX);
  b.special(tid, SpecialReg::kTidX);
  b.mul_i(gid, ctaid, ntid);
  b.add_i(gid, gid, tid);
  b.set_lt_i(cond, gid, n);
  b.bra_z(cond, "exit");
  b.block("body");
  b.addr_of(addr, out, gid, 3);
  b.st_global_i64(gid, addr);
  b.ret();
  b.block("exit");
  b.ret();
  const KernelIR ir = b.build();

  Interpreter interp;
  KernelArgs args;
  args.push_ptr(0);
  args.push_i64(10);
  LaunchDims dims;
  dims.block_x = 4;
  dims.grid_x = 3;  // 12 threads, 10 active
  const DynamicProfile p = interp.run(ir, dims, args, mem);
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(mem.read<std::int64_t>(static_cast<std::uint64_t>(i) * 8), i);
  }
  EXPECT_EQ(p.block_visits[0], 12u);
  EXPECT_EQ(p.block_visits[1], 10u);
  EXPECT_EQ(p.block_visits[2], 2u);
  EXPECT_EQ(p.global_store_bytes, 80u);
}

TEST(Interp, BarrierSynchronizesSharedMemory) {
  // Thread t writes shared[t]; after the barrier, thread t reads
  // shared[(t+1) % 8] — correct only if the barrier really synchronizes.
  AddressSpace mem(kMem, "m");
  KernelBuilder b("bar", 1);
  b.set_shared_bytes(8 * 8);
  const auto out = b.reg(), tid = b.reg(), saddr = b.reg(), zero = b.reg(),
             next = b.reg(), ntid = b.reg(), one = b.reg(), v = b.reg(), gaddr = b.reg();
  b.block("entry");
  b.ld_param(out, 0);
  b.special(tid, SpecialReg::kTidX);
  b.special(ntid, SpecialReg::kNtidX);
  b.mov_imm_i(zero, 0);
  b.mov_imm_i(one, 1);
  b.addr_of(saddr, zero, tid, 3);
  b.st_shared_i64(tid, saddr);
  b.bar();
  b.add_i(next, tid, one);
  b.rem_i(next, next, ntid);
  b.addr_of(saddr, zero, next, 3);
  b.ld_shared_i64(v, saddr);
  b.addr_of(gaddr, out, tid, 3);
  b.st_global_i64(v, gaddr);
  b.ret();
  const KernelIR ir = b.build();

  Interpreter interp;
  KernelArgs args;
  args.push_ptr(0);
  LaunchDims dims;
  dims.block_x = 8;
  const DynamicProfile p = interp.run(ir, dims, args, mem);
  for (std::int64_t t = 0; t < 8; ++t) {
    EXPECT_EQ(mem.read<std::int64_t>(static_cast<std::uint64_t>(t) * 8), (t + 1) % 8);
  }
  EXPECT_GE(p.barriers_waited, 1u);
}

TEST(Interp, AtomicAddAccumulatesAcrossThreads) {
  AddressSpace mem(kMem, "m");
  KernelBuilder b("atom", 1);
  const auto out = b.reg(), one = b.reg(), old = b.reg();
  b.block("entry");
  b.ld_param(out, 0);
  b.mov_imm_i(one, 1);
  // atom.add writes the old value into dst (scratch register `old`).
  (void)old;
  b.atom_add_global_i64(one, out);
  b.ret();
  const KernelIR ir = b.build();

  Interpreter interp;
  KernelArgs args;
  args.push_ptr(64);
  LaunchDims dims;
  dims.block_x = 32;
  dims.grid_x = 4;
  interp.run(ir, dims, args, mem);
  EXPECT_EQ(mem.read<std::int64_t>(64), 128);
}

// --- error handling --------------------------------------------------------------

TEST(Interp, IntegerDivisionByZeroThrows) {
  AddressSpace mem(kMem, "m");
  EXPECT_THROW(run1(
                   [&](KernelBuilder& b) {
                     const auto a = b.reg(), z = b.reg(), r = b.reg();
                     b.mov_imm_i(a, 1);
                     b.mov_imm_i(z, 0);
                     b.div_i(r, a, z);
                     b.ret();
                   },
                   mem),
               ContractError);
}

TEST(Interp, OutOfBoundsGlobalAccessThrows) {
  AddressSpace mem(128, "m");
  EXPECT_THROW(run1(
                   [&](KernelBuilder& b) {
                     const auto addr = b.reg(), v = b.reg();
                     b.mov_imm_i(addr, 1 << 20);
                     b.ld_global_f64(v, addr);
                     b.ret();
                   },
                   mem),
               ContractError);
}

TEST(Interp, RunawayLoopHitsInstructionBudget) {
  AddressSpace mem(kMem, "m");
  KernelBuilder b("inf", 0);
  b.block("entry");
  b.jmp("entry");
  const KernelIR ir = b.build();
  Interpreter interp;
  Interpreter::Options opts;
  opts.max_instrs_per_thread = 1000;
  EXPECT_THROW(interp.run(ir, LaunchDims{}, KernelArgs{}, mem, opts), ContractError);
}

TEST(Interp, TooFewArgumentsThrows) {
  AddressSpace mem(kMem, "m");
  KernelBuilder b("args", 2);
  const auto r = b.reg();
  b.block("entry");
  b.ld_param(r, 1);
  b.ret();
  const KernelIR ir = b.build();
  Interpreter interp;
  KernelArgs args;  // empty
  EXPECT_THROW(interp.run(ir, LaunchDims{}, args, mem), ContractError);
}

TEST(Interp, SharedOutOfBoundsThrows) {
  AddressSpace mem(kMem, "m");
  KernelBuilder b("shoob", 0);
  b.set_shared_bytes(16);
  const auto addr = b.reg(), v = b.reg();
  b.block("entry");
  b.mov_imm_i(addr, 64);
  b.ld_shared_f32(v, addr);
  b.ret();
  const KernelIR ir = b.build();
  Interpreter interp;
  EXPECT_THROW(interp.run(ir, LaunchDims{}, KernelArgs{}, mem), ContractError);
}

TEST(Interp, SpecialRegistersReportGeometry) {
  AddressSpace mem(kMem, "m");
  KernelBuilder b("specials", 1);
  const auto out = b.reg(), v = b.reg(), addr = b.reg();
  b.block("entry");
  b.ld_param(out, 0);
  b.mov(addr, out);
  for (SpecialReg sr : {SpecialReg::kNtidX, SpecialReg::kNtidY, SpecialReg::kNctaidX,
                        SpecialReg::kNctaidY}) {
    b.special(v, sr);
    b.st_global_i64(v, addr);
    const auto eight = b.reg();
    b.mov_imm_i(eight, 8);
    b.add_i(addr, addr, eight);
  }
  b.ret();
  const KernelIR ir = b.build();
  Interpreter interp;
  KernelArgs args;
  args.push_ptr(0);
  LaunchDims dims;
  dims.block_x = 3;
  dims.block_y = 2;
  dims.grid_x = 5;
  dims.grid_y = 4;
  interp.run(ir, dims, args, mem);
  EXPECT_EQ(mem.read<std::int64_t>(0), 3);
  EXPECT_EQ(mem.read<std::int64_t>(8), 2);
  EXPECT_EQ(mem.read<std::int64_t>(16), 5);
  EXPECT_EQ(mem.read<std::int64_t>(24), 4);
}

}  // namespace
}  // namespace sigvp
