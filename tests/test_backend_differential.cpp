// Cross-backend differential tests through the FULL scenario path: with
// ScenarioConfig::functional_io set, each app fills real host buffers, the
// setup copies upload them, kernels execute functionally, and the teardown
// copies bring the results back. The optimized ΣVP backend (interleaving +
// coalescing + async launches) must produce byte-identical output buffers to
// the software-emulation-on-VP baseline: the paper's speedups come from
// scheduling, never from changing what the kernels compute.

#include <gtest/gtest.h>

#include <vector>

#include "core/scenario.hpp"
#include "workloads/suite.hpp"

namespace sigvp {
namespace {

constexpr std::size_t kNumVps = 2;

// Single-launch traits: one iteration, one launch, no per-iteration
// streaming — the output bytes are then exactly the kernel's result on the
// fill_inputs data, comparable across backends.
workloads::AppTraits single_launch(const workloads::Workload& w) {
  workloads::AppTraits t = w.traits;
  t.iterations = 1;
  t.launches_per_iter = 1;
  t.iter_h2d_bytes = 0;
  t.iter_d2h_bytes = 0;
  return t;
}

ScenarioResult run_functional(const workloads::Workload& w, Backend backend,
                              bool optimized) {
  ScenarioConfig cfg;
  cfg.backend = backend;
  cfg.mode = ExecMode::kFunctional;
  cfg.functional_io = true;
  if (optimized) {
    cfg.dispatch.interleave = true;
    cfg.dispatch.coalesce = true;
    cfg.dispatch.coalesce_eager_peers = kNumVps - 1;
    cfg.async_launches = true;
  }
  std::vector<AppInstance> apps;
  const workloads::AppTraits t = single_launch(w);
  for (std::size_t i = 0; i < kNumVps; ++i) {
    apps.push_back(AppInstance{&w, w.test_n, t});
  }
  return run_scenario(cfg, apps);
}

TEST(BackendDifferential, SigmaVpMatchesEmulationByteExact) {
  const auto suite = workloads::make_suite();
  std::size_t tested = 0;
  for (const auto& w : suite) {
    if (!w.fill_inputs) continue;  // validated by dedicated kernel tests only
    SCOPED_TRACE(w.app);
    ++tested;

    const ScenarioResult ref = run_functional(w, Backend::kEmulationOnVp, false);
    const ScenarioResult opt = run_functional(w, Backend::kSigmaVp, true);

    ASSERT_EQ(ref.app_outputs.size(), kNumVps);
    ASSERT_EQ(opt.app_outputs.size(), kNumVps);
    for (std::size_t vp = 0; vp < kNumVps; ++vp) {
      ASSERT_FALSE(ref.app_outputs[vp].empty()) << "vp " << vp << " produced no output";
      EXPECT_EQ(ref.app_outputs[vp].size(), opt.app_outputs[vp].size()) << "vp " << vp;
      EXPECT_TRUE(ref.app_outputs[vp] == opt.app_outputs[vp])
          << "vp " << vp << ": optimized SigmaVP diverged from emulation";
    }
  }
  // Every workload with deterministic input fills participates; this count
  // only grows as fills are added to the suite.
  EXPECT_GE(tested, 7u);
}

TEST(BackendDifferential, PlainSigmaVpAlsoMatchesEmulation) {
  // The plain (un-optimized) multiplexing path must be functionally
  // transparent too — catches regressions hiding behind the optimizations.
  const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");
  const ScenarioResult ref = run_functional(w, Backend::kEmulationOnVp, false);
  const ScenarioResult plain = run_functional(w, Backend::kSigmaVp, false);
  ASSERT_EQ(ref.app_outputs.size(), plain.app_outputs.size());
  for (std::size_t vp = 0; vp < ref.app_outputs.size(); ++vp) {
    EXPECT_TRUE(ref.app_outputs[vp] == plain.app_outputs[vp]) << "vp " << vp;
  }
}

TEST(BackendDifferential, OutputsOnlyCollectedWhenRequested) {
  const auto suite = workloads::make_suite();
  const workloads::Workload& w = workloads::find(suite, "vectorAdd");
  ScenarioConfig cfg;
  cfg.backend = Backend::kSigmaVp;
  cfg.mode = ExecMode::kFunctional;  // functional but without functional_io
  const ScenarioResult r =
      run_scenario(cfg, {AppInstance{&w, w.test_n, single_launch(w)}});
  EXPECT_TRUE(r.app_outputs.empty());
}

}  // namespace
}  // namespace sigvp
