#!/usr/bin/env python3
"""Unit tests for scripts/bench_regression_check.py — the CI bench gate.

Covers the gate's four behaviours on the multigpu_placement checker (the
same code paths every other checker shares): a missing baseline fails, an
exact sim-domain counter mismatch fails, the wall-clock tolerance band is a
floor (small drops pass, large drops fail, faster always passes), and
--update atomically (re)writes the baseline so a subsequent check passes.

Run directly or via ctest: python3 tests/test_bench_check.py
"""

import copy
import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

REPO = pathlib.Path(__file__).resolve().parents[1]
SCRIPT = REPO / "scripts" / "bench_regression_check.py"


def sample_result():
    """A minimal but schema-complete BENCH_multigpu_placement.json."""
    return {
        "bench": "multigpu_placement",
        "placement_determinism": True,
        "points": [
            {
                "label": "quadro4000 x1",
                "devices": 1,
                "makespan_us": 400000.0,
                "speedup_vs_1": 1.0,
                "jobs": 1000,
                "migrations": 0,
                "migrated_bytes": 0,
                "wall_ms": 20.0,
                "jobs_per_sec": 50000.0,
            },
            {
                "label": "quadro4000 x4",
                "devices": 4,
                "makespan_us": 100000.0,
                "speedup_vs_1": 4.0,
                "jobs": 1000,
                "migrations": 7,
                "migrated_bytes": 8400,
                "wall_ms": 40.0,
                "jobs_per_sec": 25000.0,
            },
        ],
        "placement": {
            "devices": 4,
            "rr_makespan_us": 200000.0,
            "affinity_makespan_us": 100000.0,
            "win": 2.0,
        },
        "migration": {"migrations": 1, "migrated_bytes": 12000,
                      "makespan_us": 90000.0},
    }


class BenchCheckTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tmp = pathlib.Path(self._tmp.name)
        self.baseline_dir = self.tmp / "baselines"
        self.baseline_dir.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, name, data):
        path = self.tmp / name
        path.write_text(json.dumps(data))
        return path

    def write_baseline(self, data):
        (self.baseline_dir / "multigpu_placement.json").write_text(
            json.dumps(data))

    def run_check(self, current, extra_args=()):
        cmd = [
            sys.executable, str(SCRIPT),
            "--baseline-dir", str(self.baseline_dir),
            "--multigpu", str(self.write("current.json", current)),
            *extra_args,
        ]
        return subprocess.run(cmd, capture_output=True, text=True)

    def test_missing_baseline_fails(self):
        proc = self.run_check(sample_result())
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing baseline", proc.stdout)

    def test_identical_result_passes(self):
        self.write_baseline(sample_result())
        proc = self.run_check(sample_result())
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("all checks passed", proc.stdout)

    def test_exact_counter_mismatch_fails(self):
        self.write_baseline(sample_result())
        current = sample_result()
        current["points"][1]["migrations"] = 9  # sim-domain: exact, no band
        proc = self.run_check(current)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("deterministic fields changed", proc.stdout)
        self.assertIn("migrations: 7 -> 9", proc.stdout)

    def test_determinism_flag_must_be_true(self):
        self.write_baseline(sample_result())
        current = sample_result()
        current["placement_determinism"] = False
        proc = self.run_check(current)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("placement_determinism", proc.stdout)

    def test_tolerance_band_is_a_floor_not_a_ratchet(self):
        self.write_baseline(sample_result())

        within = copy.deepcopy(sample_result())
        within["points"][1]["jobs_per_sec"] *= 0.80  # -20% < 25% band
        self.assertEqual(self.run_check(within).returncode, 0)

        beyond = copy.deepcopy(sample_result())
        beyond["points"][1]["jobs_per_sec"] *= 0.70  # -30% > 25% band
        proc = self.run_check(beyond)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("jobs/s", proc.stdout)

        tighter = copy.deepcopy(sample_result())
        tighter["points"][1]["jobs_per_sec"] *= 0.80
        self.assertEqual(
            self.run_check(tighter, ["--tolerance", "0.1"]).returncode, 1)

        faster = copy.deepcopy(sample_result())
        faster["points"][1]["jobs_per_sec"] *= 10.0
        self.assertEqual(self.run_check(faster).returncode, 0)

    def test_missing_and_new_points_fail(self):
        self.write_baseline(sample_result())
        current = sample_result()
        current["points"][1]["label"] = "quadro4000 x999"
        proc = self.run_check(current)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing from the bench", proc.stdout)
        self.assertIn("has no baseline", proc.stdout)

    def test_update_writes_baseline_then_check_passes(self):
        current = sample_result()
        proc = self.run_check(current, ["--update"])
        self.assertEqual(proc.returncode, 0, proc.stdout)
        written = json.loads(
            (self.baseline_dir / "multigpu_placement.json").read_text())
        self.assertEqual(written, current)
        # No stray temp files from the atomic publish.
        self.assertEqual(
            [p.name for p in self.baseline_dir.iterdir()],
            ["multigpu_placement.json"])
        self.assertEqual(self.run_check(current).returncode, 0)


if __name__ == "__main__":
    unittest.main()
